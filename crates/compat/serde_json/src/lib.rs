//! Offline stand-in for `serde_json`: renders the serde shim's
//! [`Value`] tree as JSON text, and parses JSON text back into a [`Value`]
//! tree (the subset the `bench-diff` report comparator needs).

pub use serde::Value;

use serde::Serialize;

/// Error type kept for signature compatibility; serialization through the
/// shim's value model cannot actually fail.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convenience result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Parses JSON text into a [`Value`] tree.
///
/// Numbers parse as `UInt`/`Int` when integral and in range, `Float`
/// otherwise, matching what the serializer emits.
///
/// # Errors
///
/// Returns a descriptive [`Error`] on malformed input or trailing data.
pub fn from_str(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by the shim's
                            // serializer (it emits raw UTF-8); reject them.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("unsupported \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number spans are ASCII");
        if integral {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

/// Serializes a value as compact JSON.
///
/// Serializing a tree that already is a [`Value`] renders it by reference
/// (no deep copy — see [`Serialize::to_value_cow`]), so protocol envelopes
/// assembled as `Value`s cost nothing extra to print.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value_cow(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value_cow(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat(' ').take(width * depth));
    }
}

/// JSON has no NaN/Infinity; mirror serde_json by emitting `null`.
fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep integral floats readable ("3.0" rather than "3").
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&f.to_string());
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(
            to_string(&ValueWrap(v)).unwrap(),
            r#"{"a":1,"b":[true,null],"c":"x\"y"}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        let text = to_string_pretty(&ValueWrap(v)).unwrap();
        assert_eq!(text, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn floats_render_readably() {
        let mut out = String::new();
        write_float(3.0, &mut out);
        assert_eq!(out, "3.0");
        out.clear();
        write_float(0.25, &mut out);
        assert_eq!(out, "0.25");
        out.clear();
        write_float(f64::NAN, &mut out);
        assert_eq!(out, "null");
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("fig10 \"quick\"\n".into())),
            ("count".into(), Value::UInt(34)),
            ("delta".into(), Value::Int(-3)),
            ("ratio".into(), Value::Float(0.375)),
            (
                "flags".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty_arr".into(), Value::Array(vec![])),
            ("empty_obj".into(), Value::Object(vec![])),
        ]);
        for text in [
            to_string(&ValueWrap(v.clone())).unwrap(),
            to_string_pretty(&ValueWrap(v.clone())).unwrap(),
        ] {
            let parsed = from_str(&text).unwrap();
            // Floats serialized as "3.0"-style parse back as floats; the
            // original integral variants survive untouched.
            assert_eq!(parsed, v);
        }
    }

    #[test]
    fn parse_numbers_pick_natural_variants() {
        assert_eq!(from_str("7").unwrap(), Value::UInt(7));
        assert_eq!(from_str("-7").unwrap(), Value::Int(-7));
        assert_eq!(from_str("7.5").unwrap(), Value::Float(7.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("  42  ").unwrap(), Value::UInt(42));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "1 2",
            "\"\\x\"",
            "{1: 2}",
        ] {
            assert!(from_str(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn value_accessors_navigate_parsed_trees() {
        let v = from_str(r#"{"rows":[{"latency":120,"s":"Line"}],"wall":1.5}"#).unwrap();
        let rows = v.get("rows").and_then(Value::as_array).unwrap();
        assert_eq!(rows[0].get("latency").and_then(Value::as_u64), Some(120));
        assert_eq!(rows[0].get("s").and_then(Value::as_str), Some("Line"));
        assert_eq!(v.get("wall").and_then(Value::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }

    /// Test helper: a pre-built value that serializes to itself.
    struct ValueWrap(Value);
    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
