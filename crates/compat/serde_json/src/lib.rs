//! Offline stand-in for `serde_json`: renders the serde shim's
//! [`serde::Value`] tree as JSON text. Serialization only — the workspace
//! never parses JSON back in.

use serde::{Serialize, Value};

/// Error type kept for signature compatibility; serialization through the
/// shim's value model cannot actually fail.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Convenience result alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

/// Serializes a value as human-readable, two-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

fn write_value(value: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(key, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, out, indent, depth + 1);
            }
            if !entries.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', width * depth));
    }
}

/// JSON has no NaN/Infinity; mirror serde_json by emitting `null`.
fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        if f == f.trunc() && f.abs() < 1e15 {
            // Keep integral floats readable ("3.0" rather than "3").
            out.push_str(&format!("{f:.1}"));
        } else {
            out.push_str(&f.to_string());
        }
    } else {
        out.push_str("null");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_rendering() {
        let v = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            (
                "b".into(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("c".into(), Value::Str("x\"y".into())),
        ]);
        assert_eq!(
            to_string(&ValueWrap(v)).unwrap(),
            r#"{"a":1,"b":[true,null],"c":"x\"y"}"#
        );
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = Value::Object(vec![("a".into(), Value::UInt(1))]);
        let text = to_string_pretty(&ValueWrap(v)).unwrap();
        assert_eq!(text, "{\n  \"a\": 1\n}");
    }

    #[test]
    fn floats_render_readably() {
        let mut out = String::new();
        write_float(3.0, &mut out);
        assert_eq!(out, "3.0");
        out.clear();
        write_float(0.25, &mut out);
        assert_eq!(out, "0.25");
        out.clear();
        write_float(f64::NAN, &mut out);
        assert_eq!(out, "null");
    }

    /// Test helper: a pre-built value that serializes to itself.
    struct ValueWrap(Value);
    impl Serialize for ValueWrap {
        fn to_value(&self) -> Value {
            self.0.clone()
        }
    }
}
