//! Offline stand-in for `rand_chacha`: a genuine ChaCha8 block generator
//! implementing the rand shim's [`rand::RngCore`] / [`rand::SeedableRng`].
//!
//! The keystream follows RFC 7539 block structure with 8 double-rounds and a
//! key expanded from the `u64` seed via SplitMix64 (the same expansion idea
//! rand_core uses). Streams are deterministic per seed but not bit-compatible
//! with upstream `rand_chacha`; nothing in the workspace relies on upstream
//! streams.

use rand::{RngCore, SeedableRng};

/// A ChaCha generator with 8 double-rounds (the workspace's deterministic
/// seeded RNG).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&SIGMA);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // 8 rounds = 4 double-rounds (column then diagonal).
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let word = self.buf[self.idx];
        self.idx += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the 64-bit seed into the 256-bit key.
        let mut s = seed;
        let mut next = move || {
            s = s.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        let mut key = [0u32; 8];
        for pair in key.chunks_mut(2) {
            let word = next();
            pair[0] = word as u32;
            if pair.len() > 1 {
                pair[1] = (word >> 32) as u32;
            }
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16, // force refill on first use
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let sa: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn output_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mut counts = [0usize; 8];
        for _ in 0..n {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for c in counts {
            // Each bucket expects 1250; allow a generous ±20%.
            assert!((1000..1500).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(5);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
