//! Offline stand-in for `criterion`.
//!
//! crates.io is unreachable in the build environment, so this crate provides
//! the benchmark-declaration surface the workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, `bench_function`,
//! `bench_with_input`, `Bencher::iter`) backed by a simple wall-clock timer:
//! a warm-up iteration followed by `sample_size` timed iterations, reporting
//! mean and min to stdout. There is no statistical analysis, HTML report, or
//! baseline comparison — swap the manifest back to real criterion for those.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            name,
            sample_size: 20,
        }
    }
}

/// A named group of benchmarks sharing a sample size.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Times a closure against a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            samples: Vec::new(),
        };
        f(&mut bencher, input);
        bencher.report(&self.name, &id.to_string());
        self
    }

    /// Ends the group (kept for API compatibility; reports print eagerly).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter rendered as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            text: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Timer handed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Runs `f` once to warm up, then `sample_size` timed times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.reserve(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("  {group}/{id}: no samples recorded");
            return;
        }
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        let min = self.samples.iter().min().expect("non-empty");
        println!(
            "  {group}/{id}: mean {mean:?}, min {min:?} over {} samples",
            self.samples.len()
        );
    }
}

/// Declares a benchmark group function, mirroring criterion's macro shape.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running every listed group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim-test");
        group.sample_size(3);
        let mut runs = 0u32;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(runs, 4);
    }

    #[test]
    fn benchmark_id_renders_as_path() {
        assert_eq!(BenchmarkId::new("map", 8).to_string(), "map/8");
    }
}
