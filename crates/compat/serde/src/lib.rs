//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no access to crates.io, so the workspace ships
//! this minimal replacement: a self-describing [`Value`] tree, a [`Serialize`]
//! trait that renders any supported type into it, and re-exported
//! `#[derive(Serialize, Deserialize)]` macros (see the sibling
//! `serde-derive-shim` crate). The API surface is intentionally restricted to
//! what this workspace uses; swap the manifest entries back to the real serde
//! when a registry is available — no source changes are required.
//!
//! [`Deserialize`] is a marker only: nothing in the workspace reads data back
//! in, so deserialization is gated out rather than stubbed incorrectly.

pub use serde_derive::{Deserialize, Serialize};

use std::borrow::Cow;
use std::collections::{BTreeMap, HashMap};
use std::ops::Range;

/// A self-describing serialized value (the subset of the serde data model the
/// workspace needs, shaped for JSON rendering).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Null / unit.
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Floating point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered sequence.
    Array(Vec<Value>),
    /// Ordered key/value map (field order is preserved).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The value under `key` when `self` is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements when `self` is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The string when `self` is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `u64` when `self` is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::UInt(u) => Some(*u),
            Value::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    /// The number as `f64` when `self` is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::UInt(u) => Some(*u as f64),
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }
}

/// Types that can render themselves into a [`Value`].
pub trait Serialize {
    /// Renders `self` into the shim's value tree.
    fn to_value(&self) -> Value;

    /// Borrow-or-build: the value tree behind a [`Cow`], so renderers avoid
    /// a deep copy when `self` already *is* a [`Value`]. The default builds
    /// via [`Serialize::to_value`]; only the `Value` impl overrides it.
    fn to_value_cow(&self) -> Cow<'_, Value> {
        Cow::Owned(self.to_value())
    }
}

/// A [`Value`] serializes as itself, so hand-assembled trees (e.g. protocol
/// envelopes wrapping derived payloads) pass straight through
/// `serde_json::to_string` — by reference, without cloning the tree.
impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }

    fn to_value_cow(&self) -> Cow<'_, Value> {
        Cow::Borrowed(self)
    }
}

/// Marker trait emitted by `#[derive(Deserialize)]`. Deserialization is not
/// supported by the offline shim.
pub trait Deserialize: Sized {}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64, usize);
impl_serialize_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(*self as f64)
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<T: Serialize> Serialize for Range<T> {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("start".to_string(), self.start.to_value()),
            ("end".to_string(), self.end.to_value()),
        ])
    }
}

/// Maps serialize as arrays of `[key, value]` pairs (keys are not restricted
/// to strings in this workspace). Hash maps are sorted by key so output is
/// deterministic across runs and thread interleavings.
impl<K: Serialize + Ord, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        Value::Array(
            entries
                .into_iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.to_value(), v.to_value()]))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!((-2i32).to_value(), Value::Int(-2));
        assert_eq!(1.5f64.to_value(), Value::Float(1.5));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".to_string()));
        assert_eq!(Option::<u32>::None.to_value(), Value::Null);
    }

    #[test]
    fn containers_serialize_structurally() {
        assert_eq!(
            vec![1u32, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
        assert_eq!(
            (1u32, "a").to_value(),
            Value::Array(vec![Value::UInt(1), Value::Str("a".into())])
        );
        assert_eq!(
            (0usize..3).to_value(),
            Value::Object(vec![
                ("start".into(), Value::UInt(0)),
                ("end".into(), Value::UInt(3)),
            ])
        );
    }

    #[test]
    fn values_serialize_as_themselves_without_cloning() {
        let v = Value::Array(vec![Value::UInt(1), Value::Str("x".into())]);
        assert_eq!(v.to_value(), v);
        assert!(
            matches!(v.to_value_cow(), Cow::Borrowed(b) if std::ptr::eq(b, &v)),
            "a Value must render by reference, not by deep copy"
        );
        // Non-Value types keep the building default.
        assert!(matches!(1u32.to_value_cow(), Cow::Owned(Value::UInt(1))));
    }

    #[test]
    fn hash_maps_serialize_in_key_order() {
        let mut m = HashMap::new();
        m.insert(2u32, "b");
        m.insert(1u32, "a");
        assert_eq!(
            m.to_value(),
            Value::Array(vec![
                Value::Array(vec![Value::UInt(1), Value::Str("a".into())]),
                Value::Array(vec![Value::UInt(2), Value::Str("b".into())]),
            ])
        );
    }
}
