//! Offline stand-in for `serde_derive`.
//!
//! crates.io is unreachable in the build environment, so this proc-macro
//! crate reimplements the two derives the workspace uses without `syn` or
//! `quote`: the input token stream is parsed by hand (structs with named
//! fields, tuple structs, and enums with unit/tuple/struct variants — no
//! generics, which the workspace never derives on), and the generated impl is
//! assembled as a string.
//!
//! `#[derive(Serialize)]` emits an `impl serde::Serialize` following serde's
//! default external tagging: structs become objects, newtype structs become
//! their inner value, unit enum variants become strings, and data-carrying
//! variants become single-key objects. `#[derive(Deserialize)]` emits the
//! shim's marker impl only.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Parsed shape of the deriving type.
enum Shape {
    /// `struct S;`
    UnitStruct,
    /// `struct S { a: T, b: U }` with the listed field names.
    NamedStruct(Vec<String>),
    /// `struct S(T, U);` with the given arity.
    TupleStruct(usize),
    /// `enum E { ... }` with one entry per variant.
    Enum(Vec<Variant>),
}

/// One enum variant: its name and payload shape.
struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the shim's `serde::Serialize` for a non-generic type.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, shape) = parse_input(input);
    let body = match shape {
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::NamedStruct(fields) => named_fields_value(&fields, "self."),
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(arity) => {
            let elems: Vec<String> = (0..arity)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
        }
        Shape::Enum(variants) => enum_match(&name, &variants),
    };
    let out = format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse().expect("generated Serialize impl parses")
}

/// Derives the shim's `serde::Deserialize` marker for a non-generic type.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _) = parse_input(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}

/// Renders `{"f1": .., "f2": ..}` for named fields reachable via `prefix`
/// (`self.` for structs, empty for match bindings).
fn named_fields_value(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&{prefix}{f}))"))
        .collect();
    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
}

/// Renders the `match self` expression implementing serde's externally-tagged
/// enum representation.
fn enum_match(name: &str, variants: &[Variant]) -> String {
    let mut arms = Vec::new();
    for v in variants {
        let vname = &v.name;
        let arm = match &v.fields {
            VariantFields::Unit => format!(
                "{name}::{vname} => ::serde::Value::Str(\"{vname}\".to_string())"
            ),
            VariantFields::Tuple(1) => format!(
                "{name}::{vname}(__b0) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Serialize::to_value(__b0))])"
            ),
            VariantFields::Tuple(arity) => {
                let binds: Vec<String> = (0..*arity).map(|i| format!("__b{i}")).collect();
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{vname}({}) => ::serde::Value::Object(vec![(\"{vname}\".to_string(), ::serde::Value::Array(vec![{}]))])",
                    binds.join(", "),
                    elems.join(", ")
                )
            }
            VariantFields::Named(fields) => {
                let inner = named_fields_value(fields, "");
                format!(
                    "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![(\"{vname}\".to_string(), {inner})])",
                    fields.join(", ")
                )
            }
        };
        arms.push(arm);
    }
    format!("match self {{ {} }}", arms.join(",\n"))
}

/// Parses the derive input down to the type name and its field/variant shape.
fn parse_input(input: TokenStream) -> (String, Shape) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    // Skip outer attributes (`#[...]`) and visibility.
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" || id.to_string() == "enum" => {
            id.to_string()
        }
        other => panic!("serde-derive-shim: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde-derive-shim: expected type name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde-derive-shim: generic types are not supported (deriving on `{name}`)");
        }
    }
    let shape = match tokens.get(i) {
        None | Some(TokenTree::Punct(_)) if kind == "struct" => Shape::UnitStruct,
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            if kind == "struct" {
                Shape::NamedStruct(field_names(g.stream()))
            } else {
                Shape::Enum(parse_variants(g.stream()))
            }
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(top_level_chunks(g.stream()).len())
        }
        other => panic!("serde-derive-shim: unsupported type body for `{name}`: {other:?}"),
    };
    (name, shape)
}

/// Splits a token stream into top-level comma-separated chunks, dropping
/// empty trailing chunks. Angle brackets are plain punctuation in token
/// streams, so generic arguments (`BTreeMap<K, V>`) are tracked by depth to
/// keep their commas from splitting a field.
fn top_level_chunks(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut chunks = vec![Vec::new()];
    let mut angle_depth = 0usize;
    for tt in stream {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle_depth += 1;
                chunks.last_mut().expect("chunks is never empty").push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
                chunks.last_mut().expect("chunks is never empty").push(tt);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                chunks.push(Vec::new())
            }
            _ => chunks.last_mut().expect("chunks is never empty").push(tt),
        }
    }
    chunks.retain(|c| !c.is_empty());
    chunks
}

/// Strips leading attributes and visibility from a field/variant chunk.
fn strip_attrs_and_vis(chunk: &[TokenTree]) -> &[TokenTree] {
    let mut i = 0;
    loop {
        match chunk.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = chunk.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return &chunk[i..],
        }
    }
}

/// Extracts the field names of a named-fields body.
fn field_names(stream: TokenStream) -> Vec<String> {
    top_level_chunks(stream)
        .iter()
        .map(|chunk| {
            let rest = strip_attrs_and_vis(chunk);
            match rest.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde-derive-shim: expected field name, found {other:?}"),
            }
        })
        .collect()
}

/// Parses the variants of an enum body.
fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    top_level_chunks(stream)
        .iter()
        .map(|chunk| {
            let rest = strip_attrs_and_vis(chunk);
            let name = match rest.first() {
                Some(TokenTree::Ident(id)) => id.to_string(),
                other => panic!("serde-derive-shim: expected variant name, found {other:?}"),
            };
            let fields = match rest.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantFields::Named(field_names(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantFields::Tuple(top_level_chunks(g.stream()).len())
                }
                _ => VariantFields::Unit,
            };
            Variant { name, fields }
        })
        .collect()
}
