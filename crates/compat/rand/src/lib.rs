//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so this crate provides
//! the slice of the rand 0.8 surface the workspace uses: [`RngCore`],
//! [`Rng::gen_range`] over integer and float ranges, [`SeedableRng::seed_from_u64`]
//! and [`seq::SliceRandom`] (Fisher-Yates `shuffle` / `choose`). Generated
//! streams are deterministic for a given seed but are NOT bit-compatible with
//! upstream rand; nothing in the workspace depends on upstream streams.

use std::ops::Range;

/// Core entropy source: everything is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (top half of [`RngCore::next_u64`] by
    /// default; generators with a natural 32-bit word size override this).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a half-open range. Panics on an empty range,
    /// like upstream rand.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Samples a bool that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }

    /// Samples a value from the standard distribution of `T` (`[0, 1)` for
    /// floats, full range for integers).
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::standard_sample(self)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait StandardSample {
    /// Draws one sample from the type's standard distribution.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding from a plain `u64` (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128) as u64;
                // Multiply-shift bounded sampling (Lemire) without the
                // rejection step: bias is < 2^-64 * span, irrelevant here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start.wrapping_add(hi as $t)
            }
        }
    )*};
}

impl_sample_range_int!(usize, u64, u32, u16, u8, i64, i32);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits onto `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod seq {
    //! Sequence-related sampling (the `SliceRandom` subset).

    use super::RngCore;

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// Uniformly permutes the slice in place (Fisher-Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly picks one element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = crate::SampleRange::sample_from(0..i + 1, rng);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[crate::SampleRange::sample_from(0..self.len(), rng)])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            // Weak mixing is fine for these structural tests.
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.gen_range(0.25..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(1);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn choose_picks_members() {
        let mut rng = Counter(3);
        let v = [1, 2, 3];
        for _ in 0..10 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
