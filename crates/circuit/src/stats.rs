//! Gate-count and structure statistics for circuits.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{Circuit, GateKind, LatencyModel, QubitRole};

/// Summary statistics of a circuit: gate counts per kind, qubit counts per
/// role, T-count, braid count and dependency depth.
///
/// # Example
///
/// ```
/// use msfu_circuit::{CircuitBuilder, QubitRole, stats::CircuitStats};
///
/// let mut b = CircuitBuilder::new("s");
/// let raw = b.register("raw", QubitRole::Raw, 1);
/// let out = b.register("out", QubitRole::Output, 1);
/// b.h(out[0]).unwrap();
/// b.inject_t(raw[0], out[0]).unwrap();
/// let c = b.build();
/// let stats = CircuitStats::of(&c);
/// assert_eq!(stats.t_count(), 1);
/// assert_eq!(stats.num_qubits, 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CircuitStats {
    /// Total number of logical qubits.
    pub num_qubits: u32,
    /// Total number of gates.
    pub num_gates: usize,
    /// Gate counts per kind.
    pub gate_counts: BTreeMap<GateKind, usize>,
    /// Qubit counts per role.
    pub role_counts: BTreeMap<QubitRole, usize>,
    /// Number of braid operations (interaction-graph edge instances).
    pub braid_count: usize,
    /// Dependency-DAG depth in gate levels.
    pub depth: usize,
    /// Critical path in cycles under the default latency model.
    pub critical_path_cycles: u64,
}

impl CircuitStats {
    /// Computes statistics for a circuit using the default latency model.
    pub fn of(circuit: &Circuit) -> Self {
        Self::with_model(circuit, &LatencyModel::default())
    }

    /// Computes statistics for a circuit under an explicit latency model.
    pub fn with_model(circuit: &Circuit, model: &LatencyModel) -> Self {
        let mut gate_counts: BTreeMap<GateKind, usize> = BTreeMap::new();
        for g in circuit.gates() {
            *gate_counts.entry(g.kind()).or_insert(0) += 1;
        }
        let mut role_counts: BTreeMap<QubitRole, usize> = BTreeMap::new();
        for r in circuit.roles() {
            *role_counts.entry(*r).or_insert(0) += 1;
        }
        let dag = circuit.dependency_dag();
        CircuitStats {
            num_qubits: circuit.num_qubits(),
            num_gates: circuit.num_gates(),
            gate_counts,
            role_counts,
            braid_count: circuit.braid_count(),
            depth: dag.depth(),
            critical_path_cycles: dag.critical_path_cycles(circuit, model),
        }
    }

    /// Number of gates of a given kind.
    pub fn count(&self, kind: GateKind) -> usize {
        self.gate_counts.get(&kind).copied().unwrap_or(0)
    }

    /// T-count: T, T† and both injection flavours, the standard difficulty
    /// metric for fault-tolerant execution (Section II-E of the paper).
    pub fn t_count(&self) -> usize {
        self.count(GateKind::T)
            + self.count(GateKind::Tdg)
            + self.count(GateKind::InjectT)
            + self.count(GateKind::InjectTdg)
    }

    /// Number of two-qubit interactions, counting each `CXX` target once.
    pub fn two_qubit_count(&self) -> usize {
        self.braid_count
    }

    /// Number of qubits having the given role.
    pub fn qubits_with_role(&self, role: QubitRole) -> usize {
        self.role_counts.get(&role).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CircuitBuilder;

    #[test]
    fn stats_of_mixed_circuit() {
        let mut b = CircuitBuilder::new("m");
        let raw = b.register("raw", QubitRole::Raw, 2);
        let anc = b.register("anc", QubitRole::Ancilla, 2);
        let out = b.register("out", QubitRole::Output, 1);
        b.h(anc[0]).unwrap();
        b.h(out[0]).unwrap();
        b.cxx(anc[0], vec![anc[1], out[0]]).unwrap();
        b.inject_t(raw[0], anc[0]).unwrap();
        b.inject_tdg(raw[1], anc[1]).unwrap();
        b.meas_x(anc[0]).unwrap();
        b.meas_x(anc[1]).unwrap();
        let c = b.build();
        let s = CircuitStats::of(&c);

        assert_eq!(s.num_qubits, 5);
        assert_eq!(s.num_gates, 7);
        assert_eq!(s.count(GateKind::H), 2);
        assert_eq!(s.count(GateKind::MeasX), 2);
        assert_eq!(s.t_count(), 2);
        assert_eq!(s.two_qubit_count(), 4); // 2 from CXX + 2 injections
        assert_eq!(s.qubits_with_role(QubitRole::Raw), 2);
        assert_eq!(s.qubits_with_role(QubitRole::Output), 1);
        assert!(s.depth >= 3);
        assert!(s.critical_path_cycles > 0);
    }

    #[test]
    fn stats_of_empty_circuit() {
        let c = CircuitBuilder::new("e").build();
        let s = CircuitStats::of(&c);
        assert_eq!(s.num_gates, 0);
        assert_eq!(s.t_count(), 0);
        assert_eq!(s.depth, 0);
        assert_eq!(s.critical_path_cycles, 0);
    }

    #[test]
    fn custom_model_changes_critical_path_only() {
        let mut b = CircuitBuilder::new("m");
        let q = b.register("q", QubitRole::Data, 2);
        b.cnot(q[0], q[1]).unwrap();
        let c = b.build();
        let slow = LatencyModel {
            cnot: 100,
            ..LatencyModel::default()
        };
        let s1 = CircuitStats::of(&c);
        let s2 = CircuitStats::with_model(&c, &slow);
        assert_eq!(s1.num_gates, s2.num_gates);
        assert!(s2.critical_path_cycles > s1.critical_path_cycles);
    }
}
