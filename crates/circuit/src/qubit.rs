//! Logical qubit identifiers, roles and registers.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a logical qubit within a [`Circuit`](crate::Circuit).
///
/// Qubit identifiers are dense indices starting at zero; they double as
/// indices into per-qubit side tables (roles, mappings, …).
///
/// # Example
///
/// ```
/// use msfu_circuit::QubitId;
/// let q = QubitId::new(3);
/// assert_eq!(q.index(), 3);
/// assert_eq!(format!("{q}"), "q3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct QubitId(u32);

impl QubitId {
    /// Creates a qubit identifier from a raw index.
    pub const fn new(index: u32) -> Self {
        QubitId(index)
    }

    /// Returns the raw index of this qubit.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw index as `u32`.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for QubitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u32> for QubitId {
    fn from(value: u32) -> Self {
        QubitId(value)
    }
}

impl From<QubitId> for u32 {
    fn from(value: QubitId) -> Self {
        value.0
    }
}

/// Functional role of a logical qubit inside a distillation factory circuit.
///
/// Roles do not change gate semantics; they carry provenance information used
/// by the mapping and reuse machinery (e.g. the hierarchical-stitching mapper
/// needs to know which qubits are round outputs and which are ancillas that
/// can be reinitialised).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum QubitRole {
    /// Raw, low-fidelity injected magic state consumed by a distillation round.
    Raw,
    /// Ancillary qubit measured and reinitialised at round boundaries.
    Ancilla,
    /// Distilled output magic state produced by a module.
    Output,
    /// Generic data qubit (used by non-factory circuits).
    #[default]
    Data,
    /// Dedicated barrier-control ancilla (initialised to |0⟩ and used as the
    /// control of a multi-target CNOT implementing a scheduling barrier).
    BarrierControl,
}

impl QubitRole {
    /// Returns `true` for roles that are reinitialised between factory rounds
    /// and are therefore candidates for qubit reuse (Section V-B of the paper).
    pub fn is_reusable(self) -> bool {
        matches!(
            self,
            QubitRole::Raw | QubitRole::Ancilla | QubitRole::BarrierControl
        )
    }

    /// Short lowercase name used by the textual assembly emitter.
    pub fn name(self) -> &'static str {
        match self {
            QubitRole::Raw => "raw",
            QubitRole::Ancilla => "anc",
            QubitRole::Output => "out",
            QubitRole::Data => "data",
            QubitRole::BarrierControl => "barrier",
        }
    }
}

impl fmt::Display for QubitRole {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A named, contiguous group of qubits sharing a role.
///
/// Registers mirror the `qbit name[n]` declarations of the Scaffold programs
/// in the paper (Fig. 5): `raw_states[3K+8]`, `anc[K+5]`, `out[K]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QubitRegister {
    name: String,
    role: QubitRole,
    qubits: Vec<QubitId>,
}

impl QubitRegister {
    /// Creates a register over the given qubits.
    pub fn new(name: impl Into<String>, role: QubitRole, qubits: Vec<QubitId>) -> Self {
        QubitRegister {
            name: name.into(),
            role,
            qubits,
        }
    }

    /// Register name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Role shared by all qubits in this register.
    pub fn role(&self) -> QubitRole {
        self.role
    }

    /// Number of qubits in the register.
    pub fn len(&self) -> usize {
        self.qubits.len()
    }

    /// Returns `true` when the register contains no qubits.
    pub fn is_empty(&self) -> bool {
        self.qubits.is_empty()
    }

    /// The qubits of the register in declaration order.
    pub fn qubits(&self) -> &[QubitId] {
        &self.qubits
    }

    /// Returns an iterator over the qubits of the register.
    pub fn iter(&self) -> std::slice::Iter<'_, QubitId> {
        self.qubits.iter()
    }
}

impl std::ops::Index<usize> for QubitRegister {
    type Output = QubitId;

    fn index(&self, index: usize) -> &Self::Output {
        &self.qubits[index]
    }
}

impl<'a> IntoIterator for &'a QubitRegister {
    type Item = &'a QubitId;
    type IntoIter = std::slice::Iter<'a, QubitId>;

    fn into_iter(self) -> Self::IntoIter {
        self.qubits.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_id_roundtrip() {
        let q = QubitId::new(42);
        assert_eq!(q.index(), 42);
        assert_eq!(q.raw(), 42);
        assert_eq!(u32::from(q), 42);
        assert_eq!(QubitId::from(42u32), q);
    }

    #[test]
    fn qubit_id_display() {
        assert_eq!(QubitId::new(0).to_string(), "q0");
        assert_eq!(QubitId::new(17).to_string(), "q17");
    }

    #[test]
    fn qubit_id_ordering_follows_index() {
        assert!(QubitId::new(1) < QubitId::new(2));
        assert!(QubitId::new(5) > QubitId::new(0));
    }

    #[test]
    fn role_reusability() {
        assert!(QubitRole::Raw.is_reusable());
        assert!(QubitRole::Ancilla.is_reusable());
        assert!(QubitRole::BarrierControl.is_reusable());
        assert!(!QubitRole::Output.is_reusable());
        assert!(!QubitRole::Data.is_reusable());
    }

    #[test]
    fn role_names_are_distinct() {
        let roles = [
            QubitRole::Raw,
            QubitRole::Ancilla,
            QubitRole::Output,
            QubitRole::Data,
            QubitRole::BarrierControl,
        ];
        let mut names: Vec<_> = roles.iter().map(|r| r.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), roles.len());
    }

    #[test]
    fn register_basic_access() {
        let qs: Vec<QubitId> = (0..4).map(QubitId::new).collect();
        let reg = QubitRegister::new("anc", QubitRole::Ancilla, qs.clone());
        assert_eq!(reg.name(), "anc");
        assert_eq!(reg.role(), QubitRole::Ancilla);
        assert_eq!(reg.len(), 4);
        assert!(!reg.is_empty());
        assert_eq!(reg[2], QubitId::new(2));
        assert_eq!(reg.qubits(), qs.as_slice());
        let collected: Vec<_> = reg.iter().copied().collect();
        assert_eq!(collected, qs);
    }

    #[test]
    fn empty_register() {
        let reg = QubitRegister::new("empty", QubitRole::Data, Vec::new());
        assert!(reg.is_empty());
        assert_eq!(reg.len(), 0);
    }
}
