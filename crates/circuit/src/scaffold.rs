//! Scaffold-flavoured textual assembly: emission and parsing.
//!
//! The paper expresses distillation circuits in the Scaffold language and
//! compiles them to gate-level instructions (Fig. 5). This module provides a
//! flat, gate-per-line assembly format that plays the same role for this
//! reproduction: circuits can be dumped for inspection, diffed, stored, and
//! parsed back.
//!
//! Format:
//!
//! ```text
//! # circuit <name>
//! # qubits <n>
//! # role <index> <role>        (one line per non-Data qubit)
//! H q0
//! CNOT q0, q1
//! CXX q0, q1, q2, q3
//! injectT q4, q1
//! MeasX q1
//! Barrier q0, q1, q2
//! ```

use crate::{Circuit, CircuitError, Gate, QubitId, QubitRole, Result};

/// Emits a circuit in the textual assembly format.
///
/// # Example
///
/// ```
/// use msfu_circuit::{CircuitBuilder, QubitRole, scaffold};
///
/// let mut b = CircuitBuilder::new("demo");
/// let q = b.register("q", QubitRole::Data, 2);
/// b.cnot(q[0], q[1]).unwrap();
/// let c = b.build();
/// let text = scaffold::emit(&c);
/// let parsed = scaffold::parse(&text)?;
/// assert_eq!(parsed.num_gates(), 1);
/// # Ok::<(), msfu_circuit::CircuitError>(())
/// ```
pub fn emit(circuit: &Circuit) -> String {
    let mut out = String::new();
    out.push_str(&format!("# circuit {}\n", circuit.name()));
    out.push_str(&format!("# qubits {}\n", circuit.num_qubits()));
    for (i, role) in circuit.roles().iter().enumerate() {
        if *role != QubitRole::Data {
            out.push_str(&format!("# role {} {}\n", i, role.name()));
        }
    }
    for gate in circuit.gates() {
        out.push_str(&gate.to_string());
        out.push('\n');
    }
    out
}

fn parse_role(s: &str) -> Option<QubitRole> {
    match s {
        "raw" => Some(QubitRole::Raw),
        "anc" => Some(QubitRole::Ancilla),
        "out" => Some(QubitRole::Output),
        "data" => Some(QubitRole::Data),
        "barrier" => Some(QubitRole::BarrierControl),
        _ => None,
    }
}

fn parse_qubit(token: &str, line: usize) -> Result<QubitId> {
    let token = token.trim();
    let digits = token.strip_prefix('q').ok_or_else(|| CircuitError::Parse {
        line,
        message: format!("expected qubit token, found `{token}`"),
    })?;
    let index: u32 = digits.parse().map_err(|_| CircuitError::Parse {
        line,
        message: format!("invalid qubit index `{digits}`"),
    })?;
    Ok(QubitId::new(index))
}

fn parse_operands(rest: &str, line: usize) -> Result<Vec<QubitId>> {
    rest.split(',')
        .filter(|t| !t.trim().is_empty())
        .map(|t| parse_qubit(t, line))
        .collect()
}

/// Parses the textual assembly format back into a [`Circuit`].
///
/// # Errors
///
/// Returns [`CircuitError::Parse`] when a line is malformed, and the usual
/// validation errors when a gate references qubits outside the declared range.
pub fn parse(text: &str) -> Result<Circuit> {
    let mut name = String::from("parsed");
    let mut num_qubits: u32 = 0;
    let mut roles_overrides: Vec<(usize, QubitRole)> = Vec::new();
    let mut gates: Vec<Gate> = Vec::new();

    for (lineno, raw_line) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw_line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(comment) = trimmed.strip_prefix('#') {
            let tokens: Vec<&str> = comment.split_whitespace().collect();
            match tokens.as_slice() {
                ["circuit", rest @ ..] => name = rest.join(" "),
                ["qubits", n] => {
                    num_qubits = n.parse().map_err(|_| CircuitError::Parse {
                        line,
                        message: format!("invalid qubit count `{n}`"),
                    })?;
                }
                ["role", idx, role] => {
                    let idx: usize = idx.parse().map_err(|_| CircuitError::Parse {
                        line,
                        message: format!("invalid role index `{idx}`"),
                    })?;
                    let role = parse_role(role).ok_or_else(|| CircuitError::Parse {
                        line,
                        message: format!("unknown role `{role}`"),
                    })?;
                    roles_overrides.push((idx, role));
                }
                _ => {} // unknown comments are ignored
            }
            continue;
        }

        let (mnemonic, rest) = match trimmed.split_once(' ') {
            Some((m, r)) => (m, r),
            None => (trimmed, ""),
        };
        let operands = parse_operands(rest, line)?;
        let require = |n: usize| -> Result<()> {
            if operands.len() == n {
                Ok(())
            } else {
                Err(CircuitError::Parse {
                    line,
                    message: format!(
                        "{mnemonic} expects {n} operand(s), found {}",
                        operands.len()
                    ),
                })
            }
        };
        let gate = match mnemonic {
            "H" => {
                require(1)?;
                Gate::H(operands[0])
            }
            "X" => {
                require(1)?;
                Gate::X(operands[0])
            }
            "Z" => {
                require(1)?;
                Gate::Z(operands[0])
            }
            "S" => {
                require(1)?;
                Gate::S(operands[0])
            }
            "Sdg" => {
                require(1)?;
                Gate::Sdg(operands[0])
            }
            "T" => {
                require(1)?;
                Gate::T(operands[0])
            }
            "Tdg" => {
                require(1)?;
                Gate::Tdg(operands[0])
            }
            "CNOT" => {
                require(2)?;
                Gate::Cnot {
                    control: operands[0],
                    target: operands[1],
                }
            }
            "CXX" => {
                if operands.len() < 2 {
                    return Err(CircuitError::Parse {
                        line,
                        message: "CXX expects a control and at least one target".into(),
                    });
                }
                Gate::Cxx {
                    control: operands[0],
                    targets: operands[1..].to_vec(),
                }
            }
            "injectT" => {
                require(2)?;
                Gate::InjectT {
                    raw: operands[0],
                    target: operands[1],
                }
            }
            "injectTdag" => {
                require(2)?;
                Gate::InjectTdg {
                    raw: operands[0],
                    target: operands[1],
                }
            }
            "MeasX" => {
                require(1)?;
                Gate::MeasX(operands[0])
            }
            "MeasZ" => {
                require(1)?;
                Gate::MeasZ(operands[0])
            }
            "Init" => {
                require(1)?;
                Gate::Init(operands[0])
            }
            "Barrier" => {
                if operands.is_empty() {
                    return Err(CircuitError::Parse {
                        line,
                        message: "Barrier expects at least one operand".into(),
                    });
                }
                Gate::Barrier(operands)
            }
            other => {
                return Err(CircuitError::Parse {
                    line,
                    message: format!("unknown mnemonic `{other}`"),
                })
            }
        };
        gates.push(gate);
    }

    // If no qubit count was declared, infer it from the highest-index operand.
    if num_qubits == 0 {
        let max_q = gates
            .iter()
            .flat_map(|g| g.qubits())
            .map(|q| q.raw() + 1)
            .max()
            .unwrap_or(0);
        num_qubits = max_q;
    }

    let mut roles = vec![QubitRole::Data; num_qubits as usize];
    for (idx, role) in roles_overrides {
        if idx < roles.len() {
            roles[idx] = role;
        }
    }
    let mut circuit = Circuit::new(name, roles);
    for gate in gates {
        circuit.push(gate)?;
    }
    Ok(circuit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, GateKind};

    fn sample_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("sample");
        let raw = b.register("raw", QubitRole::Raw, 2);
        let anc = b.register("anc", QubitRole::Ancilla, 2);
        let out = b.register("out", QubitRole::Output, 1);
        b.h(anc[0]).unwrap();
        b.cxx(anc[0], vec![anc[1], out[0]]).unwrap();
        b.inject_t(raw[0], anc[0]).unwrap();
        b.inject_tdg(raw[1], anc[1]).unwrap();
        b.cnot(anc[1], out[0]).unwrap();
        b.meas_x(anc[0]).unwrap();
        b.barrier(vec![anc[0], anc[1], out[0]]).unwrap();
        b.build()
    }

    #[test]
    fn emit_parse_roundtrip_preserves_gates_and_roles() {
        let c = sample_circuit();
        let text = emit(&c);
        let parsed = parse(&text).unwrap();
        assert_eq!(parsed.num_qubits(), c.num_qubits());
        assert_eq!(parsed.num_gates(), c.num_gates());
        assert_eq!(parsed.gates(), c.gates());
        assert_eq!(parsed.roles(), c.roles());
        assert_eq!(parsed.name(), "sample");
    }

    #[test]
    fn parse_infers_qubit_count_when_missing() {
        let c = parse("CNOT q0, q3\nH q1\n").unwrap();
        assert_eq!(c.num_qubits(), 4);
        assert_eq!(c.num_gates(), 2);
    }

    #[test]
    fn parse_rejects_unknown_mnemonic() {
        let err = parse("FROB q0\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { line: 1, .. }));
    }

    #[test]
    fn parse_rejects_bad_operand_count() {
        let err = parse("CNOT q0\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { .. }));
        let err = parse("CXX q0\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { .. }));
    }

    #[test]
    fn parse_rejects_bad_qubit_token() {
        let err = parse("H banana\n").unwrap_err();
        assert!(matches!(err, CircuitError::Parse { .. }));
    }

    #[test]
    fn parse_ignores_blank_lines_and_unknown_comments() {
        let c = parse("# hello world\n\nH q0\n\n# another\nMeasX q0\n").unwrap();
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.gates()[1].kind(), GateKind::MeasX);
    }

    #[test]
    fn emitted_text_contains_role_annotations() {
        let c = sample_circuit();
        let text = emit(&c);
        assert!(text.contains("# role 0 raw"));
        assert!(text.contains("# role 4 out"));
        assert!(text.contains("# qubits 5"));
    }
}
