//! The gate set of Bravyi-Haah block-code distillation circuits.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::QubitId;

/// Identifier of a gate within a [`Circuit`](crate::Circuit).
///
/// Gate identifiers are dense indices into the circuit's gate sequence; the
/// program order they imply is the order used for hazard analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GateId(u32);

impl GateId {
    /// Creates a gate identifier from a raw index.
    pub const fn new(index: u32) -> Self {
        GateId(index)
    }

    /// Raw index of this gate in the circuit's gate sequence.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "g{}", self.0)
    }
}

impl From<u32> for GateId {
    fn from(value: u32) -> Self {
        GateId(value)
    }
}

/// Coarse classification of a [`Gate`], independent of its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum GateKind {
    /// Hadamard.
    H,
    /// Pauli-X.
    X,
    /// Pauli-Z.
    Z,
    /// Phase gate S = Rz(π/2).
    S,
    /// Adjoint phase gate.
    Sdg,
    /// T = Rz(π/4) (requires a magic state under the surface code).
    T,
    /// Adjoint T gate.
    Tdg,
    /// Two-qubit controlled-NOT, implemented as a braid.
    Cnot,
    /// Single-control multi-target CNOT (the `CXX` gate of the paper).
    Cxx,
    /// Probabilistic T-state injection onto a target qubit.
    InjectT,
    /// Probabilistic T†-state injection onto a target qubit.
    InjectTdg,
    /// X-basis measurement.
    MeasX,
    /// Z-basis measurement.
    MeasZ,
    /// (Re-)initialisation of a qubit into |0⟩ or |+⟩.
    Init,
    /// Scheduling barrier over a qubit set.
    Barrier,
}

impl GateKind {
    /// Mnemonic used in the textual assembly format.
    pub fn mnemonic(self) -> &'static str {
        match self {
            GateKind::H => "H",
            GateKind::X => "X",
            GateKind::Z => "Z",
            GateKind::S => "S",
            GateKind::Sdg => "Sdg",
            GateKind::T => "T",
            GateKind::Tdg => "Tdg",
            GateKind::Cnot => "CNOT",
            GateKind::Cxx => "CXX",
            GateKind::InjectT => "injectT",
            GateKind::InjectTdg => "injectTdag",
            GateKind::MeasX => "MeasX",
            GateKind::MeasZ => "MeasZ",
            GateKind::Init => "Init",
            GateKind::Barrier => "Barrier",
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// A single quantum operation on one or more logical qubits.
///
/// The gate set follows the Scaffold program of Fig. 5 in the paper: Clifford
/// single-qubit gates, `CNOT`, the single-control multi-target `CXX`,
/// probabilistic magic-state injection `injectT`/`injectTdag`, `MeasX`, and
/// the barrier construct used to separate block-code rounds.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Gate {
    /// Hadamard gate.
    H(QubitId),
    /// Pauli-X gate.
    X(QubitId),
    /// Pauli-Z gate.
    Z(QubitId),
    /// Phase gate.
    S(QubitId),
    /// Adjoint phase gate.
    Sdg(QubitId),
    /// T gate.
    T(QubitId),
    /// Adjoint T gate.
    Tdg(QubitId),
    /// Controlled-NOT braid between two logical qubits.
    Cnot {
        /// Control qubit.
        control: QubitId,
        /// Target qubit.
        target: QubitId,
    },
    /// Single-control multi-target CNOT (`CXX` in the paper).
    Cxx {
        /// Control qubit.
        control: QubitId,
        /// Target qubits (must be non-empty and disjoint from the control).
        targets: Vec<QubitId>,
    },
    /// Probabilistic injection of a raw T state into `target`.
    ///
    /// In expectation this costs two CNOT braids between `raw` and `target`
    /// (Section II-E of the paper).
    InjectT {
        /// Raw magic-state qubit consumed by the injection.
        raw: QubitId,
        /// Data/ancilla qubit receiving the rotation.
        target: QubitId,
    },
    /// Probabilistic injection of a raw T† state into `target`.
    InjectTdg {
        /// Raw magic-state qubit consumed by the injection.
        raw: QubitId,
        /// Data/ancilla qubit receiving the rotation.
        target: QubitId,
    },
    /// X-basis measurement of a qubit.
    MeasX(QubitId),
    /// Z-basis measurement of a qubit.
    MeasZ(QubitId),
    /// (Re-)initialisation of a qubit.
    Init(QubitId),
    /// Scheduling barrier over the given qubits.
    ///
    /// Implemented physically as a multi-target CNOT controlled by an ancilla
    /// prepared in |0⟩ (Section V-A); in the IR it acts purely as a
    /// synchronisation point for hazard analysis.
    Barrier(Vec<QubitId>),
}

impl Gate {
    /// The [`GateKind`] of this gate.
    pub fn kind(&self) -> GateKind {
        match self {
            Gate::H(_) => GateKind::H,
            Gate::X(_) => GateKind::X,
            Gate::Z(_) => GateKind::Z,
            Gate::S(_) => GateKind::S,
            Gate::Sdg(_) => GateKind::Sdg,
            Gate::T(_) => GateKind::T,
            Gate::Tdg(_) => GateKind::Tdg,
            Gate::Cnot { .. } => GateKind::Cnot,
            Gate::Cxx { .. } => GateKind::Cxx,
            Gate::InjectT { .. } => GateKind::InjectT,
            Gate::InjectTdg { .. } => GateKind::InjectTdg,
            Gate::MeasX(_) => GateKind::MeasX,
            Gate::MeasZ(_) => GateKind::MeasZ,
            Gate::Init(_) => GateKind::Init,
            Gate::Barrier(_) => GateKind::Barrier,
        }
    }

    /// All qubits touched by this gate, in a canonical order
    /// (control/raw first, then targets).
    pub fn qubits(&self) -> Vec<QubitId> {
        match self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::MeasX(q)
            | Gate::MeasZ(q)
            | Gate::Init(q) => vec![*q],
            Gate::Cnot { control, target } => vec![*control, *target],
            Gate::Cxx { control, targets } => {
                let mut qs = Vec::with_capacity(targets.len() + 1);
                qs.push(*control);
                qs.extend_from_slice(targets);
                qs
            }
            Gate::InjectT { raw, target } | Gate::InjectTdg { raw, target } => {
                vec![*raw, *target]
            }
            Gate::Barrier(qs) => qs.clone(),
        }
    }

    /// Number of qubits touched by the gate.
    pub fn arity(&self) -> usize {
        match self {
            Gate::Cnot { .. } | Gate::InjectT { .. } | Gate::InjectTdg { .. } => 2,
            Gate::Cxx { targets, .. } => targets.len() + 1,
            Gate::Barrier(qs) => qs.len(),
            _ => 1,
        }
    }

    /// Returns `true` if the gate requires a braid (a spatial pathway) between
    /// two or more logical qubit tiles on the surface-code mesh.
    ///
    /// Barriers are excluded: in the IR they synchronise the schedule but the
    /// physical multi-target CNOT realisation is accounted for separately.
    pub fn is_braid(&self) -> bool {
        matches!(
            self,
            Gate::Cnot { .. } | Gate::Cxx { .. } | Gate::InjectT { .. } | Gate::InjectTdg { .. }
        )
    }

    /// Returns `true` for interactions between exactly two distinct qubits.
    pub fn is_two_qubit(&self) -> bool {
        matches!(
            self,
            Gate::Cnot { .. } | Gate::InjectT { .. } | Gate::InjectTdg { .. }
        )
    }

    /// Returns `true` for scheduling barriers.
    pub fn is_barrier(&self) -> bool {
        matches!(self, Gate::Barrier(_))
    }

    /// Returns `true` for measurement gates.
    pub fn is_measurement(&self) -> bool {
        matches!(self, Gate::MeasX(_) | Gate::MeasZ(_))
    }

    /// The pairwise interaction edges induced by this gate on the circuit
    /// interaction graph (Section VI of the paper).
    ///
    /// Multi-target `CXX` gates contribute one edge per (control, target)
    /// pair. Single-qubit gates, measurements, initialisations and barriers
    /// contribute no edges.
    pub fn interaction_edges(&self) -> Vec<(QubitId, QubitId)> {
        match self {
            Gate::Cnot { control, target } => vec![(*control, *target)],
            Gate::InjectT { raw, target } | Gate::InjectTdg { raw, target } => {
                vec![(*raw, *target)]
            }
            Gate::Cxx { control, targets } => targets.iter().map(|t| (*control, *t)).collect(),
            _ => Vec::new(),
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qubits = self.qubits();
        write!(f, "{}", self.kind().mnemonic())?;
        write!(f, " ")?;
        for (i, q) in qubits.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{q}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn kind_matches_variant() {
        assert_eq!(Gate::H(q(0)).kind(), GateKind::H);
        assert_eq!(
            Gate::Cnot {
                control: q(0),
                target: q(1)
            }
            .kind(),
            GateKind::Cnot
        );
        assert_eq!(Gate::Barrier(vec![q(0)]).kind(), GateKind::Barrier);
    }

    #[test]
    fn qubits_order_control_first() {
        let g = Gate::Cnot {
            control: q(3),
            target: q(1),
        };
        assert_eq!(g.qubits(), vec![q(3), q(1)]);

        let g = Gate::Cxx {
            control: q(0),
            targets: vec![q(2), q(4)],
        };
        assert_eq!(g.qubits(), vec![q(0), q(2), q(4)]);
        assert_eq!(g.arity(), 3);
    }

    #[test]
    fn braid_classification() {
        assert!(Gate::Cnot {
            control: q(0),
            target: q(1)
        }
        .is_braid());
        assert!(Gate::InjectT {
            raw: q(0),
            target: q(1)
        }
        .is_braid());
        assert!(!Gate::H(q(0)).is_braid());
        assert!(!Gate::Barrier(vec![q(0), q(1)]).is_braid());
        assert!(!Gate::MeasX(q(0)).is_braid());
    }

    #[test]
    fn two_qubit_classification() {
        assert!(Gate::InjectTdg {
            raw: q(0),
            target: q(1)
        }
        .is_two_qubit());
        assert!(!Gate::Cxx {
            control: q(0),
            targets: vec![q(1), q(2)]
        }
        .is_two_qubit());
    }

    #[test]
    fn interaction_edges_of_cxx_fan_out() {
        let g = Gate::Cxx {
            control: q(0),
            targets: vec![q(1), q(2), q(3)],
        };
        assert_eq!(
            g.interaction_edges(),
            vec![(q(0), q(1)), (q(0), q(2)), (q(0), q(3))]
        );
    }

    #[test]
    fn interaction_edges_of_single_qubit_gates_empty() {
        assert!(Gate::H(q(0)).interaction_edges().is_empty());
        assert!(Gate::MeasX(q(0)).interaction_edges().is_empty());
        assert!(Gate::Barrier(vec![q(0), q(1)])
            .interaction_edges()
            .is_empty());
    }

    #[test]
    fn display_is_readable() {
        let g = Gate::Cnot {
            control: q(0),
            target: q(5),
        };
        assert_eq!(g.to_string(), "CNOT q0, q5");
        assert_eq!(Gate::MeasX(q(2)).to_string(), "MeasX q2");
    }

    #[test]
    fn gate_id_display_and_index() {
        let g = GateId::new(7);
        assert_eq!(g.index(), 7);
        assert_eq!(g.to_string(), "g7");
        assert_eq!(GateId::from(7u32), g);
    }

    #[test]
    fn measurement_classification() {
        assert!(Gate::MeasX(q(0)).is_measurement());
        assert!(Gate::MeasZ(q(0)).is_measurement());
        assert!(!Gate::Init(q(0)).is_measurement());
    }
}
