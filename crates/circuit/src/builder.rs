//! Ergonomic construction of circuits with named registers.

use crate::{Circuit, Gate, GateId, QubitId, QubitRegister, QubitRole, Result};

/// Builder for [`Circuit`]s that manages qubit allocation via named registers.
///
/// The builder mirrors the structure of the Scaffold programs used in the
/// paper: registers are declared first (`raw_states`, `anc`, `out`), then
/// gates are appended in program order.
///
/// # Example
///
/// ```
/// use msfu_circuit::{CircuitBuilder, QubitRole};
///
/// let mut b = CircuitBuilder::new("module");
/// let raw = b.register("raw", QubitRole::Raw, 2);
/// let anc = b.register("anc", QubitRole::Ancilla, 1);
/// b.inject_t(raw[0], anc[0]).unwrap();
/// b.inject_tdg(raw[1], anc[0]).unwrap();
/// b.meas_x(anc[0]).unwrap();
/// let c = b.build();
/// assert_eq!(c.num_qubits(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct CircuitBuilder {
    name: String,
    roles: Vec<QubitRole>,
    registers: Vec<QubitRegister>,
    gates: Vec<Gate>,
}

impl CircuitBuilder {
    /// Creates a builder for a circuit with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        CircuitBuilder {
            name: name.into(),
            roles: Vec::new(),
            registers: Vec::new(),
            gates: Vec::new(),
        }
    }

    /// Declares a register of `len` fresh qubits with the given role and
    /// returns their identifiers in declaration order.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        role: QubitRole,
        len: usize,
    ) -> Vec<QubitId> {
        let start = self.roles.len() as u32;
        let qubits: Vec<QubitId> = (0..len as u32).map(|i| QubitId::new(start + i)).collect();
        self.roles.extend(std::iter::repeat(role).take(len));
        self.registers
            .push(QubitRegister::new(name, role, qubits.clone()));
        qubits
    }

    /// Allocates a single fresh qubit with the given role.
    pub fn qubit(&mut self, name: impl Into<String>, role: QubitRole) -> QubitId {
        self.register(name, role, 1)[0]
    }

    /// Number of qubits allocated so far.
    pub fn num_qubits(&self) -> u32 {
        self.roles.len() as u32
    }

    /// Number of gates appended so far.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Appends an arbitrary gate.
    ///
    /// # Errors
    ///
    /// Returns an error if the gate references unallocated qubits, repeats a
    /// qubit, or is an empty multi-target gate.
    pub fn push(&mut self, gate: Gate) -> Result<GateId> {
        // Validate against a temporary circuit view; cheaper than rebuilding,
        // we just reuse the same validation logic via a scratch circuit.
        let mut scratch = Circuit::new("scratch", self.roles.clone());
        scratch.push(gate.clone())?;
        let id = GateId::new(self.gates.len() as u32);
        self.gates.push(gate);
        Ok(id)
    }

    /// Appends a Hadamard gate.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is unallocated.
    pub fn h(&mut self, q: QubitId) -> Result<GateId> {
        self.push(Gate::H(q))
    }

    /// Appends a Pauli-X gate.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is unallocated.
    pub fn x(&mut self, q: QubitId) -> Result<GateId> {
        self.push(Gate::X(q))
    }

    /// Appends a Pauli-Z gate.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is unallocated.
    pub fn z(&mut self, q: QubitId) -> Result<GateId> {
        self.push(Gate::Z(q))
    }

    /// Appends an S gate.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is unallocated.
    pub fn s(&mut self, q: QubitId) -> Result<GateId> {
        self.push(Gate::S(q))
    }

    /// Appends a T gate.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is unallocated.
    pub fn t(&mut self, q: QubitId) -> Result<GateId> {
        self.push(Gate::T(q))
    }

    /// Appends a CNOT gate.
    ///
    /// # Errors
    ///
    /// Returns an error if either qubit is unallocated or both are the same.
    pub fn cnot(&mut self, control: QubitId, target: QubitId) -> Result<GateId> {
        self.push(Gate::Cnot { control, target })
    }

    /// Appends a single-control multi-target CNOT (`CXX`).
    ///
    /// # Errors
    ///
    /// Returns an error if any qubit is unallocated, the target list is empty,
    /// or a qubit is repeated.
    pub fn cxx(&mut self, control: QubitId, targets: Vec<QubitId>) -> Result<GateId> {
        self.push(Gate::Cxx { control, targets })
    }

    /// Appends a probabilistic T-state injection.
    ///
    /// # Errors
    ///
    /// Returns an error if either qubit is unallocated or both are the same.
    pub fn inject_t(&mut self, raw: QubitId, target: QubitId) -> Result<GateId> {
        self.push(Gate::InjectT { raw, target })
    }

    /// Appends a probabilistic T†-state injection.
    ///
    /// # Errors
    ///
    /// Returns an error if either qubit is unallocated or both are the same.
    pub fn inject_tdg(&mut self, raw: QubitId, target: QubitId) -> Result<GateId> {
        self.push(Gate::InjectTdg { raw, target })
    }

    /// Appends an X-basis measurement.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is unallocated.
    pub fn meas_x(&mut self, q: QubitId) -> Result<GateId> {
        self.push(Gate::MeasX(q))
    }

    /// Appends a Z-basis measurement.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is unallocated.
    pub fn meas_z(&mut self, q: QubitId) -> Result<GateId> {
        self.push(Gate::MeasZ(q))
    }

    /// Appends a qubit (re-)initialisation.
    ///
    /// # Errors
    ///
    /// Returns an error if the qubit is unallocated.
    pub fn init(&mut self, q: QubitId) -> Result<GateId> {
        self.push(Gate::Init(q))
    }

    /// Appends a scheduling barrier over the given qubits.
    ///
    /// # Errors
    ///
    /// Returns an error if the list is empty or references unallocated qubits.
    pub fn barrier(&mut self, qubits: Vec<QubitId>) -> Result<GateId> {
        self.push(Gate::Barrier(qubits))
    }

    /// Appends a scheduling barrier over every qubit allocated so far.
    ///
    /// # Errors
    ///
    /// Returns an error if no qubits have been allocated.
    pub fn barrier_all(&mut self) -> Result<GateId> {
        let all: Vec<QubitId> = (0..self.num_qubits()).map(QubitId::new).collect();
        self.push(Gate::Barrier(all))
    }

    /// Finalises the builder into a [`Circuit`].
    pub fn build(self) -> Circuit {
        let mut c = Circuit::new(self.name, self.roles);
        c.set_registers(self.registers);
        for g in self.gates {
            // Gates were validated at push time against the allocation state
            // that existed then; allocation only grows, so re-validation
            // cannot fail here.
            c.push(g).expect("builder gates are pre-validated");
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitError, GateKind};

    #[test]
    fn registers_allocate_dense_ids() {
        let mut b = CircuitBuilder::new("c");
        let a = b.register("a", QubitRole::Raw, 3);
        let c = b.register("c", QubitRole::Output, 2);
        assert_eq!(a, vec![QubitId::new(0), QubitId::new(1), QubitId::new(2)]);
        assert_eq!(c, vec![QubitId::new(3), QubitId::new(4)]);
        assert_eq!(b.num_qubits(), 5);
    }

    #[test]
    fn builder_rejects_unallocated_qubits() {
        let mut b = CircuitBuilder::new("c");
        b.register("a", QubitRole::Data, 1);
        let err = b.h(QubitId::new(3)).unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { .. }));
    }

    #[test]
    fn build_preserves_order_roles_and_registers() {
        let mut b = CircuitBuilder::new("c");
        let raw = b.register("raw", QubitRole::Raw, 1);
        let out = b.register("out", QubitRole::Output, 1);
        b.h(out[0]).unwrap();
        b.inject_t(raw[0], out[0]).unwrap();
        b.meas_x(raw[0]).unwrap();
        let c = b.build();
        assert_eq!(c.name(), "c");
        assert_eq!(c.num_gates(), 3);
        assert_eq!(c.gates()[0].kind(), GateKind::H);
        assert_eq!(c.gates()[1].kind(), GateKind::InjectT);
        assert_eq!(c.role(raw[0]), QubitRole::Raw);
        assert_eq!(c.role(out[0]), QubitRole::Output);
        assert_eq!(c.registers().len(), 2);
        assert_eq!(c.registers()[0].name(), "raw");
    }

    #[test]
    fn barrier_all_covers_every_qubit() {
        let mut b = CircuitBuilder::new("c");
        b.register("a", QubitRole::Data, 4);
        b.barrier_all().unwrap();
        let c = b.build();
        assert_eq!(c.gates()[0].qubits().len(), 4);
        assert!(c.gates()[0].is_barrier());
    }

    #[test]
    fn single_qubit_helper_allocates() {
        let mut b = CircuitBuilder::new("c");
        let q0 = b.qubit("ctrl", QubitRole::BarrierControl);
        assert_eq!(q0, QubitId::new(0));
        assert_eq!(b.num_qubits(), 1);
    }

    #[test]
    fn all_helper_methods_append() {
        let mut b = CircuitBuilder::new("c");
        let q = b.register("q", QubitRole::Data, 3);
        b.h(q[0]).unwrap();
        b.x(q[0]).unwrap();
        b.z(q[1]).unwrap();
        b.s(q[1]).unwrap();
        b.t(q[2]).unwrap();
        b.cnot(q[0], q[1]).unwrap();
        b.cxx(q[0], vec![q[1], q[2]]).unwrap();
        b.inject_t(q[0], q[1]).unwrap();
        b.inject_tdg(q[1], q[2]).unwrap();
        b.meas_x(q[0]).unwrap();
        b.meas_z(q[1]).unwrap();
        b.init(q[2]).unwrap();
        b.barrier(vec![q[0], q[1]]).unwrap();
        assert_eq!(b.num_gates(), 13);
        let c = b.build();
        assert_eq!(c.num_gates(), 13);
    }
}
