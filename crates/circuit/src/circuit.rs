//! The [`Circuit`] container: a validated sequence of gates over logical qubits.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{
    CircuitError, DependencyDag, Gate, GateId, LatencyModel, QubitId, QubitRegister, QubitRole,
    Result,
};

/// A quantum circuit: an ordered sequence of [`Gate`]s over a fixed set of
/// logical qubits, each carrying a [`QubitRole`].
///
/// Program order defines the data hazards used for dependency analysis; the
/// braid simulator of the paper treats any shared-qubit hazard as a true
/// dependency (Section VIII-A), and so does [`DependencyDag`].
///
/// # Example
///
/// ```
/// use msfu_circuit::{CircuitBuilder, QubitRole};
///
/// let mut b = CircuitBuilder::new("example");
/// let q = b.register("q", QubitRole::Data, 3);
/// b.h(q[0]).unwrap();
/// b.cnot(q[0], q[1]).unwrap();
/// b.cnot(q[1], q[2]).unwrap();
/// let c = b.build();
/// assert_eq!(c.num_gates(), 3);
/// assert_eq!(c.interaction_pairs().len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Circuit {
    name: String,
    roles: Vec<QubitRole>,
    registers: Vec<QubitRegister>,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit with the given name and per-qubit roles.
    pub fn new(name: impl Into<String>, roles: Vec<QubitRole>) -> Self {
        Circuit {
            name: name.into(),
            roles,
            registers: Vec::new(),
            gates: Vec::new(),
        }
    }

    /// Name of the circuit.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of logical qubits in the circuit.
    pub fn num_qubits(&self) -> u32 {
        self.roles.len() as u32
    }

    /// Number of gates in the circuit.
    pub fn num_gates(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit contains no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// The gates of the circuit in program order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Returns the gate with the given identifier.
    ///
    /// # Panics
    ///
    /// Panics if the identifier is out of range for this circuit.
    pub fn gate(&self, id: GateId) -> &Gate {
        &self.gates[id.index()]
    }

    /// Iterates over `(GateId, &Gate)` pairs in program order.
    pub fn iter_gates(&self) -> impl Iterator<Item = (GateId, &Gate)> {
        self.gates
            .iter()
            .enumerate()
            .map(|(i, g)| (GateId::new(i as u32), g))
    }

    /// Per-qubit roles, indexed by [`QubitId::index`].
    pub fn roles(&self) -> &[QubitRole] {
        &self.roles
    }

    /// Role of a single qubit.
    ///
    /// # Panics
    ///
    /// Panics if the qubit is out of range.
    pub fn role(&self, qubit: QubitId) -> QubitRole {
        self.roles[qubit.index()]
    }

    /// Named registers declared for this circuit (may be empty when a circuit
    /// was assembled gate-by-gate without register bookkeeping).
    pub fn registers(&self) -> &[QubitRegister] {
        &self.registers
    }

    /// Returns all qubits having the given role.
    pub fn qubits_with_role(&self, role: QubitRole) -> Vec<QubitId> {
        self.roles
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == role)
            .map(|(i, _)| QubitId::new(i as u32))
            .collect()
    }

    /// Appends a gate after validating its operands.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::QubitOutOfRange`] if the gate references a
    /// qubit outside the circuit, [`CircuitError::DuplicateQubit`] if a
    /// multi-qubit gate repeats a qubit, and [`CircuitError::EmptyTargets`]
    /// for a `Cxx` or `Barrier` with no operands.
    pub fn push(&mut self, gate: Gate) -> Result<GateId> {
        self.validate_gate(&gate)?;
        let id = GateId::new(self.gates.len() as u32);
        self.gates.push(gate);
        Ok(id)
    }

    /// Appends all gates of another circuit, offsetting nothing: both circuits
    /// must share the same qubit space. Used when concatenating per-module
    /// circuits that were generated against a common allocator.
    ///
    /// # Errors
    ///
    /// Returns an error if any appended gate fails validation against this
    /// circuit's qubit count.
    pub fn extend_gates<I>(&mut self, gates: I) -> Result<()>
    where
        I: IntoIterator<Item = Gate>,
    {
        for g in gates {
            self.push(g)?;
        }
        Ok(())
    }

    pub(crate) fn set_registers(&mut self, registers: Vec<QubitRegister>) {
        self.registers = registers;
    }

    fn validate_gate(&self, gate: &Gate) -> Result<()> {
        let qubits = gate.qubits();
        match gate {
            Gate::Cxx { targets, .. } if targets.is_empty() => {
                return Err(CircuitError::EmptyTargets)
            }
            Gate::Barrier(qs) if qs.is_empty() => return Err(CircuitError::EmptyTargets),
            _ => {}
        }
        let n = self.num_qubits();
        for q in &qubits {
            if q.raw() >= n {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: *q,
                    num_qubits: n,
                });
            }
        }
        // Barriers may legitimately list many qubits but still must not repeat
        // them; all other multi-qubit gates must act on distinct qubits.
        if qubits.len() > 1 {
            let mut seen = vec![false; n as usize];
            for q in &qubits {
                if seen[q.index()] {
                    return Err(CircuitError::DuplicateQubit { qubit: *q });
                }
                seen[q.index()] = true;
            }
        }
        Ok(())
    }

    /// Two-qubit interaction pairs with multiplicities, i.e. the weighted edge
    /// list of the program interaction graph (Section VI of the paper).
    ///
    /// Pairs are canonicalised so the smaller qubit id comes first.
    pub fn interaction_pairs(&self) -> BTreeMap<(QubitId, QubitId), usize> {
        let mut pairs = BTreeMap::new();
        for gate in &self.gates {
            for (a, b) in gate.interaction_edges() {
                let key = if a <= b { (a, b) } else { (b, a) };
                *pairs.entry(key).or_insert(0) += 1;
            }
        }
        pairs
    }

    /// Builds the data-hazard dependency DAG of the circuit.
    pub fn dependency_dag(&self) -> DependencyDag {
        DependencyDag::build(self)
    }

    /// Critical-path length of the circuit in cycles under the given latency
    /// model. This is the "theoretical lower bound" used in Fig. 7 and the
    /// `Critical` row of Table I of the paper.
    pub fn critical_path_cycles(&self, model: &LatencyModel) -> u64 {
        self.dependency_dag().critical_path_cycles(self, model)
    }

    /// Total number of braid operations (two-qubit interactions plus one per
    /// `CXX` target) in the circuit.
    pub fn braid_count(&self) -> usize {
        self.gates.iter().map(|g| g.interaction_edges().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gate;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    fn circuit(n: u32) -> Circuit {
        Circuit::new("test", vec![QubitRole::Data; n as usize])
    }

    #[test]
    fn push_and_access_gates() {
        let mut c = circuit(3);
        let id0 = c.push(Gate::H(q(0))).unwrap();
        let id1 = c
            .push(Gate::Cnot {
                control: q(0),
                target: q(1),
            })
            .unwrap();
        assert_eq!(id0.index(), 0);
        assert_eq!(id1.index(), 1);
        assert_eq!(c.num_gates(), 2);
        assert_eq!(c.gate(id1).kind().mnemonic(), "CNOT");
        assert!(!c.is_empty());
    }

    #[test]
    fn rejects_out_of_range_qubits() {
        let mut c = circuit(2);
        let err = c
            .push(Gate::Cnot {
                control: q(0),
                target: q(5),
            })
            .unwrap_err();
        assert!(matches!(err, CircuitError::QubitOutOfRange { .. }));
    }

    #[test]
    fn rejects_duplicate_qubits() {
        let mut c = circuit(2);
        let err = c
            .push(Gate::Cnot {
                control: q(1),
                target: q(1),
            })
            .unwrap_err();
        assert_eq!(err, CircuitError::DuplicateQubit { qubit: q(1) });
    }

    #[test]
    fn rejects_empty_multi_target_gates() {
        let mut c = circuit(2);
        assert_eq!(
            c.push(Gate::Cxx {
                control: q(0),
                targets: vec![]
            })
            .unwrap_err(),
            CircuitError::EmptyTargets
        );
        assert_eq!(
            c.push(Gate::Barrier(vec![])).unwrap_err(),
            CircuitError::EmptyTargets
        );
    }

    #[test]
    fn interaction_pairs_are_canonical_and_weighted() {
        let mut c = circuit(3);
        c.push(Gate::Cnot {
            control: q(2),
            target: q(0),
        })
        .unwrap();
        c.push(Gate::Cnot {
            control: q(0),
            target: q(2),
        })
        .unwrap();
        c.push(Gate::Cxx {
            control: q(1),
            targets: vec![q(0), q(2)],
        })
        .unwrap();
        let pairs = c.interaction_pairs();
        assert_eq!(pairs[&(q(0), q(2))], 2);
        assert_eq!(pairs[&(q(0), q(1))], 1);
        assert_eq!(pairs[&(q(1), q(2))], 1);
    }

    #[test]
    fn qubits_with_role_filters() {
        let mut roles = vec![QubitRole::Raw; 2];
        roles.push(QubitRole::Output);
        let c = Circuit::new("roles", roles);
        assert_eq!(c.qubits_with_role(QubitRole::Raw), vec![q(0), q(1)]);
        assert_eq!(c.qubits_with_role(QubitRole::Output), vec![q(2)]);
        assert!(c.qubits_with_role(QubitRole::Ancilla).is_empty());
    }

    #[test]
    fn braid_count_counts_cxx_fanout() {
        let mut c = circuit(4);
        c.push(Gate::H(q(0))).unwrap();
        c.push(Gate::Cxx {
            control: q(0),
            targets: vec![q(1), q(2), q(3)],
        })
        .unwrap();
        c.push(Gate::Cnot {
            control: q(1),
            target: q(2),
        })
        .unwrap();
        assert_eq!(c.braid_count(), 4);
    }

    #[test]
    fn extend_gates_validates_each() {
        let mut c = circuit(2);
        let gates = vec![Gate::H(q(0)), Gate::H(q(5))];
        assert!(c.extend_gates(gates).is_err());
        // The valid prefix was still appended.
        assert_eq!(c.num_gates(), 1);
    }
}
