//! Gate commutativity analysis and commutation-aware schedule relaxation
//! (Section V-A of the paper).
//!
//! Quantum gate scheduling differs from classical instruction scheduling
//! because commuting gates need not respect program order. The paper notes
//! that for block-code distillation circuits this extra freedom buys little
//! (barriers and checkpoints limit gate mobility to a small constant per
//! round), but the analysis itself is a standard tool and this module
//! provides it: pairwise commutation rules over the distillation gate set and
//! a relaxed dependency analysis that drops order constraints between
//! commuting gates acting on shared qubits.

use crate::{Circuit, Gate, GateId, GateKind, LatencyModel, QubitId};

/// The Pauli basis in which a gate acts on one of its qubits, for the purpose
/// of commutation checking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum AxisUse {
    /// The gate is diagonal in Z on this qubit (Z, S, T, CNOT control,
    /// measurement in Z, injections on the target side behave like Rz).
    Z,
    /// The gate acts as an X-type operator on this qubit (X, CNOT target,
    /// X-basis measurement).
    X,
    /// Anything else (Hadamard, initialisation, barrier): treated as
    /// non-commuting with everything sharing the qubit.
    Other,
}

/// Axis use of `gate` on `qubit` (which must be one of the gate's operands).
fn axis_use(gate: &Gate, qubit: QubitId) -> AxisUse {
    match gate {
        Gate::Z(_) | Gate::S(_) | Gate::Sdg(_) | Gate::T(_) | Gate::Tdg(_) | Gate::MeasZ(_) => {
            AxisUse::Z
        }
        Gate::X(_) | Gate::MeasX(_) => AxisUse::X,
        Gate::Cnot { control, .. } => {
            if *control == qubit {
                AxisUse::Z
            } else {
                AxisUse::X
            }
        }
        Gate::Cxx { control, .. } => {
            if *control == qubit {
                AxisUse::Z
            } else {
                AxisUse::X
            }
        }
        // An injection applies a (probabilistic) Rz rotation to the target and
        // consumes/measures the raw state: Z-like on the target, Other on the
        // raw qubit (it destroys it).
        Gate::InjectT { raw, .. } | Gate::InjectTdg { raw, .. } => {
            if *raw == qubit {
                AxisUse::Other
            } else {
                AxisUse::Z
            }
        }
        Gate::H(_) | Gate::Init(_) | Gate::Barrier(_) => AxisUse::Other,
    }
}

/// Returns `true` when two gates commute, i.e. exchanging their order leaves
/// the circuit's action unchanged.
///
/// Gates on disjoint qubit sets always commute. Gates sharing qubits commute
/// when, on every shared qubit, both act in the same diagonal basis (both
/// Z-like or both X-like). Barriers never commute with anything sharing a
/// qubit — that is their purpose.
pub fn gates_commute(a: &Gate, b: &Gate) -> bool {
    if a.is_barrier() || b.is_barrier() {
        // Barriers share qubits with almost everything; they only "commute"
        // with gates on disjoint qubit sets.
        let qa = a.qubits();
        return !b.qubits().iter().any(|q| qa.contains(q));
    }
    let qa = a.qubits();
    for q in b.qubits() {
        if !qa.contains(&q) {
            continue;
        }
        let ua = axis_use(a, q);
        let ub = axis_use(b, q);
        match (ua, ub) {
            (AxisUse::Z, AxisUse::Z) | (AxisUse::X, AxisUse::X) => {}
            _ => return false,
        }
    }
    true
}

/// Commutation-aware dependency statistics of a circuit: how many of the
/// program-order data hazards are *false* in the sense that the two gates
/// commute and could legally be reordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommutationAnalysis {
    /// Number of hazard edges in the strict (program-order) dependency DAG.
    pub strict_dependencies: usize,
    /// Of those, the number connecting gates that actually commute.
    pub commuting_pairs: usize,
    /// Critical path in cycles under the strict hazard model.
    pub strict_critical_path: u64,
    /// Critical path in cycles when commuting pairs are not ordered.
    pub relaxed_critical_path: u64,
}

impl CommutationAnalysis {
    /// Fraction of strict dependencies that are removable by commutation.
    pub fn false_dependency_fraction(&self) -> f64 {
        if self.strict_dependencies == 0 {
            return 0.0;
        }
        self.commuting_pairs as f64 / self.strict_dependencies as f64
    }

    /// Relative critical-path reduction offered by commutation-aware
    /// scheduling (0.0 when it offers nothing, as the paper observes for
    /// barriered block-code circuits).
    pub fn critical_path_reduction(&self) -> f64 {
        if self.strict_critical_path == 0 {
            return 0.0;
        }
        1.0 - self.relaxed_critical_path as f64 / self.strict_critical_path as f64
    }
}

/// Analyses a circuit under the strict hazard model and under a relaxed model
/// where commuting gates are not ordered.
pub fn analyze(circuit: &Circuit, model: &LatencyModel) -> CommutationAnalysis {
    let dag = circuit.dependency_dag();
    let n = circuit.num_gates();

    let mut strict_dependencies = 0usize;
    let mut commuting_pairs = 0usize;
    // Relaxed predecessor lists: keep only non-commuting hazards, but make the
    // relation transitive enough for a sound longest path by falling back to
    // the previous non-commuting user of each qubit.
    let mut relaxed_preds: Vec<Vec<GateId>> = vec![Vec::new(); n];
    let mut last_conflict: Vec<Option<GateId>> = vec![None; circuit.num_qubits() as usize];

    for (id, gate) in circuit.iter_gates() {
        for p in dag.predecessors(id) {
            strict_dependencies += 1;
            if gates_commute(gate, circuit.gate(*p)) {
                commuting_pairs += 1;
            }
        }
        let mut preds = Vec::new();
        for q in gate.qubits() {
            if let Some(prev) = last_conflict[q.index()] {
                if !gates_commute(gate, circuit.gate(prev)) && !preds.contains(&prev) {
                    preds.push(prev);
                }
            }
        }
        for q in gate.qubits() {
            // A gate becomes the new conflict anchor on its qubits unless it
            // commutes with the previous anchor, in which case the anchor is
            // kept (both must still precede any later non-commuting gate; the
            // kept anchor is the earlier of the two, which is conservative).
            let replace = match last_conflict[q.index()] {
                Some(prev) => !gates_commute(gate, circuit.gate(prev)),
                None => true,
            };
            if replace {
                last_conflict[q.index()] = Some(id);
            }
        }
        relaxed_preds[id.index()] = preds;
    }

    // Longest path under the relaxed model.
    let mut finish = vec![0u64; n];
    let mut relaxed_critical_path = 0u64;
    for i in 0..n {
        let start = relaxed_preds[i]
            .iter()
            .map(|p| finish[p.index()])
            .max()
            .unwrap_or(0);
        finish[i] = start + model.cycles(&circuit.gates()[i]);
        relaxed_critical_path = relaxed_critical_path.max(finish[i]);
    }

    CommutationAnalysis {
        strict_dependencies,
        commuting_pairs,
        strict_critical_path: dag.critical_path_cycles(circuit, model),
        relaxed_critical_path,
    }
}

/// Returns the gates of `circuit` whose kind matches `kind` and that could be
/// hoisted above at least one of their strict predecessors by commutation —
/// the "small constant number of gates that may execute early" the paper
/// refers to.
pub fn hoistable_gates(circuit: &Circuit, kind: GateKind) -> Vec<GateId> {
    let dag = circuit.dependency_dag();
    circuit
        .iter_gates()
        .filter(|(id, gate)| {
            gate.kind() == kind
                && dag
                    .predecessors(*id)
                    .iter()
                    .any(|p| gates_commute(gate, circuit.gate(*p)))
        })
        .map(|(id, _)| id)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, QubitRole};

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn disjoint_gates_commute() {
        let a = Gate::Cnot {
            control: q(0),
            target: q(1),
        };
        let b = Gate::Cnot {
            control: q(2),
            target: q(3),
        };
        assert!(gates_commute(&a, &b));
    }

    #[test]
    fn z_rotations_commute_with_cnot_controls() {
        let t = Gate::T(q(0));
        let cnot = Gate::Cnot {
            control: q(0),
            target: q(1),
        };
        assert!(gates_commute(&t, &cnot));
        // ...but not with the CNOT acting on q0 as the target.
        let cnot_rev = Gate::Cnot {
            control: q(1),
            target: q(0),
        };
        assert!(!gates_commute(&t, &cnot_rev));
    }

    #[test]
    fn cnots_sharing_a_control_commute() {
        let a = Gate::Cnot {
            control: q(0),
            target: q(1),
        };
        let b = Gate::Cnot {
            control: q(0),
            target: q(2),
        };
        assert!(gates_commute(&a, &b));
        // Sharing a target also commutes; control-of-one = target-of-other
        // does not.
        let c = Gate::Cnot {
            control: q(3),
            target: q(1),
        };
        assert!(gates_commute(&a, &c));
        let d = Gate::Cnot {
            control: q(1),
            target: q(3),
        };
        assert!(!gates_commute(&a, &d));
    }

    #[test]
    fn hadamard_commutes_with_nothing_on_shared_qubits() {
        let h = Gate::H(q(0));
        assert!(!gates_commute(&h, &Gate::T(q(0))));
        assert!(!gates_commute(&h, &Gate::X(q(0))));
        assert!(gates_commute(&h, &Gate::T(q(1))));
    }

    #[test]
    fn barriers_block_shared_qubits() {
        let barrier = Gate::Barrier(vec![q(0), q(1)]);
        assert!(!gates_commute(&barrier, &Gate::T(q(0))));
        assert!(gates_commute(&barrier, &Gate::T(q(2))));
    }

    #[test]
    fn measurement_bases_matter() {
        assert!(gates_commute(&Gate::MeasZ(q(0)), &Gate::T(q(0))));
        assert!(!gates_commute(&Gate::MeasX(q(0)), &Gate::T(q(0))));
    }

    #[test]
    fn analysis_finds_false_dependencies_in_a_z_chain() {
        // T then CNOT-control then T on the same qubit: all commute pairwise,
        // so the relaxed critical path collapses.
        let mut b = CircuitBuilder::new("z-chain");
        let qs = b.register("q", QubitRole::Data, 2);
        b.t(qs[0]).unwrap();
        b.cnot(qs[0], qs[1]).unwrap();
        b.t(qs[0]).unwrap();
        let c = b.build();
        let analysis = analyze(&c, &LatencyModel::default());
        assert!(analysis.commuting_pairs > 0);
        assert!(analysis.relaxed_critical_path <= analysis.strict_critical_path);
        assert!(analysis.false_dependency_fraction() > 0.0);
        assert!(analysis.critical_path_reduction() >= 0.0);
    }

    #[test]
    fn analysis_of_non_commuting_chain_changes_nothing() {
        let mut b = CircuitBuilder::new("hx");
        let qs = b.register("q", QubitRole::Data, 1);
        b.h(qs[0]).unwrap();
        b.x(qs[0]).unwrap();
        b.h(qs[0]).unwrap();
        let c = b.build();
        let analysis = analyze(&c, &LatencyModel::default());
        assert_eq!(analysis.commuting_pairs, 0);
        assert_eq!(
            analysis.relaxed_critical_path,
            analysis.strict_critical_path
        );
        assert_eq!(analysis.false_dependency_fraction(), 0.0);
    }

    #[test]
    fn hoistable_gates_are_detected() {
        let mut b = CircuitBuilder::new("hoist");
        let qs = b.register("q", QubitRole::Data, 2);
        b.t(qs[0]).unwrap();
        b.cnot(qs[0], qs[1]).unwrap(); // commutes with the preceding T
        b.h(qs[1]).unwrap(); // does not commute with the CNOT target use
        let c = b.build();
        let hoistable = hoistable_gates(&c, GateKind::Cnot);
        assert_eq!(hoistable.len(), 1);
        assert!(hoistable_gates(&c, GateKind::H).is_empty());
    }

    #[test]
    fn empty_circuit_analysis() {
        let c = CircuitBuilder::new("empty").build();
        let analysis = analyze(&c, &LatencyModel::default());
        assert_eq!(analysis.strict_dependencies, 0);
        assert_eq!(analysis.false_dependency_fraction(), 0.0);
        assert_eq!(analysis.critical_path_reduction(), 0.0);
    }
}
