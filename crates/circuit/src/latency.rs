//! Per-gate logical-cycle latency model.

use serde::{Deserialize, Serialize};

use crate::Gate;

/// Logical-cycle cost of each gate class.
///
/// The braid network simulator of the paper is cycle accurate but the paper
/// does not publish its per-gate costs; this model exposes them as tunable
/// parameters with defaults chosen so single-level factory latencies fall in
/// the few-hundred-cycle range reported in Fig. 10a. Every cost is expressed
/// in logical surface-code cycles.
///
/// # Example
///
/// ```
/// use msfu_circuit::{Gate, LatencyModel, QubitId};
///
/// let model = LatencyModel::default();
/// let cnot = Gate::Cnot { control: QubitId::new(0), target: QubitId::new(1) };
/// assert!(model.cycles(&cnot) >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LatencyModel {
    /// Cost of a single-qubit Clifford gate (H, X, Z, S).
    pub single_qubit: u64,
    /// Cost of a logical T/T† gate applied directly (rarely used: factories
    /// realise T via injection).
    pub t_gate: u64,
    /// Cost of a CNOT braid (extend + contract).
    pub cnot: u64,
    /// Cost of a multi-target CNOT braid, per target.
    pub cxx_per_target: u64,
    /// Cost of a probabilistic magic-state injection. The paper notes an
    /// injection costs two CNOT braids in expectation plus a correction.
    pub inject: u64,
    /// Cost of a logical measurement.
    pub measure: u64,
    /// Cost of (re-)initialising a logical qubit.
    pub init: u64,
}

impl LatencyModel {
    /// The default model used throughout the reproduction: CNOT braids cost
    /// two cycles, injections cost two CNOT braids plus a correction cycle,
    /// measurements and initialisations one cycle each.
    pub const fn paper_default() -> Self {
        LatencyModel {
            single_qubit: 1,
            t_gate: 10,
            cnot: 2,
            cxx_per_target: 2,
            inject: 5,
            measure: 1,
            init: 1,
        }
    }

    /// Returns the latency in logical cycles of the given gate.
    ///
    /// Barriers are free: they constrain the schedule but occupy no mesh
    /// resources in the IR (their physical realisation is accounted for by the
    /// simulator's synchronisation behaviour).
    pub fn cycles(&self, gate: &Gate) -> u64 {
        match gate {
            Gate::H(_) | Gate::X(_) | Gate::Z(_) | Gate::S(_) | Gate::Sdg(_) => self.single_qubit,
            Gate::T(_) | Gate::Tdg(_) => self.t_gate,
            Gate::Cnot { .. } => self.cnot,
            Gate::Cxx { targets, .. } => self.cxx_per_target * targets.len().max(1) as u64,
            Gate::InjectT { .. } | Gate::InjectTdg { .. } => self.inject,
            Gate::MeasX(_) | Gate::MeasZ(_) => self.measure,
            Gate::Init(_) => self.init,
            Gate::Barrier(_) => 0,
        }
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QubitId;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn default_equals_paper_default() {
        assert_eq!(LatencyModel::default(), LatencyModel::paper_default());
    }

    #[test]
    fn barrier_is_free() {
        let m = LatencyModel::default();
        assert_eq!(m.cycles(&Gate::Barrier(vec![q(0), q(1)])), 0);
    }

    #[test]
    fn cxx_scales_with_targets() {
        let m = LatencyModel::default();
        let one = m.cycles(&Gate::Cxx {
            control: q(0),
            targets: vec![q(1)],
        });
        let three = m.cycles(&Gate::Cxx {
            control: q(0),
            targets: vec![q(1), q(2), q(3)],
        });
        assert_eq!(three, 3 * one);
    }

    #[test]
    fn injection_costs_more_than_cnot() {
        let m = LatencyModel::default();
        let cnot = m.cycles(&Gate::Cnot {
            control: q(0),
            target: q(1),
        });
        let inject = m.cycles(&Gate::InjectT {
            raw: q(0),
            target: q(1),
        });
        assert!(inject > cnot);
    }

    #[test]
    fn custom_model_is_respected() {
        let m = LatencyModel {
            single_qubit: 7,
            ..LatencyModel::default()
        };
        assert_eq!(m.cycles(&Gate::H(q(0))), 7);
    }
}
