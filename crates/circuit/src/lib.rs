//! # msfu-circuit
//!
//! Quantum circuit intermediate representation (IR) used throughout the
//! MSFU (Magic-State Functional Units) toolchain.
//!
//! The crate provides:
//!
//! * [`QubitId`], [`QubitRole`] and [`QubitRegister`] — logical qubit naming
//!   and role tracking (raw magic states, ancillas, outputs, …).
//! * [`Gate`] — the gate set used by Bravyi-Haah block-code distillation
//!   circuits: Clifford gates, the multi-target `CXX` gate, probabilistic
//!   magic-state injection (`InjectT`/`InjectTdg`), measurement and barriers.
//! * [`Circuit`] and [`CircuitBuilder`] — gate sequences with validation.
//! * [`DependencyDag`] — data-hazard dependency analysis (the braid simulator
//!   of the paper treats any shared-qubit hazard as a true dependency).
//! * [`Schedule`] — ASAP level scheduling and critical-path analysis, which
//!   provides the "theoretical lower bound" curves of Fig. 7 in the paper.
//! * [`LatencyModel`] — per-gate logical cycle costs.
//! * [`stats`] — gate/T-count statistics.
//! * [`scaffold`] — a Scaffold-flavoured textual assembly emitter and parser.
//!
//! # Example
//!
//! ```
//! use msfu_circuit::{CircuitBuilder, QubitRole, LatencyModel};
//!
//! let mut b = CircuitBuilder::new("bell");
//! let q = b.register("q", QubitRole::Data, 2);
//! b.h(q[0]).unwrap();
//! b.cnot(q[0], q[1]).unwrap();
//! b.meas_x(q[0]).unwrap();
//! let circuit = b.build();
//!
//! assert_eq!(circuit.num_qubits(), 2);
//! let model = LatencyModel::default();
//! assert!(circuit.critical_path_cycles(&model) > 0);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod builder;
mod circuit;
pub mod commute;
mod dag;
mod error;
mod gate;
mod latency;
mod qubit;
pub mod scaffold;
mod schedule;
pub mod stats;

pub use builder::CircuitBuilder;
pub use circuit::Circuit;
pub use dag::DependencyDag;
pub use error::CircuitError;
pub use gate::{Gate, GateId, GateKind};
pub use latency::LatencyModel;
pub use qubit::{QubitId, QubitRegister, QubitRole};
pub use schedule::{Schedule, TimeStep};

/// Convenience result alias used by fallible APIs in this crate.
pub type Result<T> = std::result::Result<T, CircuitError>;
