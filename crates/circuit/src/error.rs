//! Error types for circuit construction and parsing.

use std::fmt;

use crate::QubitId;

/// Errors produced by circuit construction, validation and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CircuitError {
    /// A gate referenced a qubit outside the circuit's allocated range.
    QubitOutOfRange {
        /// The offending qubit.
        qubit: QubitId,
        /// Number of qubits allocated in the circuit.
        num_qubits: u32,
    },
    /// A multi-qubit gate referenced the same qubit more than once.
    DuplicateQubit {
        /// The duplicated qubit.
        qubit: QubitId,
    },
    /// A multi-target gate was constructed with no targets.
    EmptyTargets,
    /// The textual assembly parser encountered a malformed line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl fmt::Display for CircuitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CircuitError::QubitOutOfRange { qubit, num_qubits } => write!(
                f,
                "qubit {qubit} is out of range for a circuit with {num_qubits} qubits"
            ),
            CircuitError::DuplicateQubit { qubit } => {
                write!(f, "qubit {qubit} appears more than once in a single gate")
            }
            CircuitError::EmptyTargets => write!(f, "multi-target gate has no targets"),
            CircuitError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for CircuitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = CircuitError::QubitOutOfRange {
            qubit: QubitId::new(9),
            num_qubits: 4,
        };
        let msg = e.to_string();
        assert!(msg.contains("q9"));
        assert!(msg.contains('4'));

        let e = CircuitError::DuplicateQubit {
            qubit: QubitId::new(2),
        };
        assert!(e.to_string().contains("q2"));

        assert!(CircuitError::EmptyTargets
            .to_string()
            .contains("no targets"));

        let e = CircuitError::Parse {
            line: 12,
            message: "unknown mnemonic".into(),
        };
        assert!(e.to_string().contains("12"));
        assert!(e.to_string().contains("unknown mnemonic"));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CircuitError>();
    }
}
