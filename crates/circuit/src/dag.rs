//! Data-hazard dependency DAG over circuit gates.

use crate::{Circuit, GateId, LatencyModel};

/// Dependency DAG of a circuit under the hazard model of the paper's braid
/// simulator: *any* pair of gates sharing a qubit, with one appearing later in
/// program order, forms a true dependency (Section VIII-A).
///
/// The DAG records, for each gate, the immediate predecessors induced by the
/// most recent prior use of each of its qubits. Because the hazard relation is
/// transitive along per-qubit chains, these immediate edges are sufficient for
/// level (ASAP) scheduling and critical-path analysis.
///
/// # Example
///
/// ```
/// use msfu_circuit::{CircuitBuilder, QubitRole, LatencyModel};
///
/// let mut b = CircuitBuilder::new("chain");
/// let q = b.register("q", QubitRole::Data, 2);
/// b.h(q[0]).unwrap();
/// b.cnot(q[0], q[1]).unwrap();
/// b.meas_x(q[1]).unwrap();
/// let c = b.build();
/// let dag = c.dependency_dag();
/// assert_eq!(dag.num_gates(), 3);
/// // H -> CNOT -> MeasX is a strict chain.
/// assert_eq!(dag.asap_levels()[2], 2);
/// ```
#[derive(Debug, Clone)]
pub struct DependencyDag {
    /// predecessors[g] = gates that must complete before gate g may start.
    predecessors: Vec<Vec<GateId>>,
    /// successors[g] = gates that depend on gate g.
    successors: Vec<Vec<GateId>>,
}

impl DependencyDag {
    /// Builds the dependency DAG for a circuit.
    pub fn build(circuit: &Circuit) -> Self {
        let n = circuit.num_gates();
        let mut predecessors: Vec<Vec<GateId>> = vec![Vec::new(); n];
        let mut successors: Vec<Vec<GateId>> = vec![Vec::new(); n];
        // Last gate (if any) that touched each qubit.
        let mut last_use: Vec<Option<GateId>> = vec![None; circuit.num_qubits() as usize];

        for (id, gate) in circuit.iter_gates() {
            let mut preds = Vec::new();
            for q in gate.qubits() {
                if let Some(prev) = last_use[q.index()] {
                    if !preds.contains(&prev) {
                        preds.push(prev);
                    }
                }
                last_use[q.index()] = Some(id);
            }
            for p in &preds {
                successors[p.index()].push(id);
            }
            predecessors[id.index()] = preds;
        }

        DependencyDag {
            predecessors,
            successors,
        }
    }

    /// Number of gates covered by the DAG.
    pub fn num_gates(&self) -> usize {
        self.predecessors.len()
    }

    /// Immediate predecessors of a gate.
    pub fn predecessors(&self, gate: GateId) -> &[GateId] {
        &self.predecessors[gate.index()]
    }

    /// Immediate successors of a gate.
    pub fn successors(&self, gate: GateId) -> &[GateId] {
        &self.successors[gate.index()]
    }

    /// Gates with no predecessors (ready at time zero).
    pub fn roots(&self) -> Vec<GateId> {
        (0..self.num_gates())
            .filter(|&i| self.predecessors[i].is_empty())
            .map(|i| GateId::new(i as u32))
            .collect()
    }

    /// A topological order of the gates. Because predecessors always precede
    /// their dependents in program order, program order itself is topological;
    /// this method exists for clarity and for use by consumers that shuffle
    /// gate identifiers.
    pub fn topological_order(&self) -> Vec<GateId> {
        (0..self.num_gates())
            .map(|i| GateId::new(i as u32))
            .collect()
    }

    /// ASAP level of each gate: the length (in gates) of the longest
    /// dependency chain ending at the gate, with roots at level zero.
    pub fn asap_levels(&self) -> Vec<usize> {
        let n = self.num_gates();
        let mut levels = vec![0usize; n];
        for i in 0..n {
            let mut level = 0;
            for p in &self.predecessors[i] {
                level = level.max(levels[p.index()] + 1);
            }
            levels[i] = level;
        }
        levels
    }

    /// Depth of the DAG in gate levels (zero for an empty circuit).
    pub fn depth(&self) -> usize {
        self.asap_levels()
            .iter()
            .copied()
            .max()
            .map_or(0, |d| d + 1)
    }

    /// Critical-path length in cycles: the maximum, over all dependency
    /// chains, of the sum of per-gate latencies. This is the theoretical
    /// lower bound on circuit latency used throughout the paper's evaluation.
    pub fn critical_path_cycles(&self, circuit: &Circuit, model: &LatencyModel) -> u64 {
        let n = self.num_gates();
        let mut finish = vec![0u64; n];
        let mut max_finish = 0;
        for i in 0..n {
            let start = self.predecessors[i]
                .iter()
                .map(|p| finish[p.index()])
                .max()
                .unwrap_or(0);
            let latency = model.cycles(&circuit.gates()[i]);
            finish[i] = start + latency;
            max_finish = max_finish.max(finish[i]);
        }
        max_finish
    }

    /// Earliest start time in cycles for each gate under unlimited resources.
    pub fn asap_start_cycles(&self, circuit: &Circuit, model: &LatencyModel) -> Vec<u64> {
        let n = self.num_gates();
        let mut finish = vec![0u64; n];
        let mut start = vec![0u64; n];
        for i in 0..n {
            let s = self.predecessors[i]
                .iter()
                .map(|p| finish[p.index()])
                .max()
                .unwrap_or(0);
            start[i] = s;
            finish[i] = s + model.cycles(&circuit.gates()[i]);
        }
        start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, QubitRole};

    fn chain_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("chain");
        let q = b.register("q", QubitRole::Data, 3);
        b.h(q[0]).unwrap();
        b.cnot(q[0], q[1]).unwrap();
        b.cnot(q[1], q[2]).unwrap();
        b.meas_x(q[2]).unwrap();
        b.build()
    }

    #[test]
    fn chain_has_strictly_increasing_levels() {
        let c = chain_circuit();
        let dag = c.dependency_dag();
        assert_eq!(dag.asap_levels(), vec![0, 1, 2, 3]);
        assert_eq!(dag.depth(), 4);
    }

    #[test]
    fn independent_gates_share_level() {
        let mut b = CircuitBuilder::new("par");
        let q = b.register("q", QubitRole::Data, 4);
        b.h(q[0]).unwrap();
        b.h(q[1]).unwrap();
        b.cnot(q[0], q[1]).unwrap();
        b.cnot(q[2], q[3]).unwrap();
        let c = b.build();
        let dag = c.dependency_dag();
        let levels = dag.asap_levels();
        assert_eq!(levels[0], 0);
        assert_eq!(levels[1], 0);
        assert_eq!(levels[2], 1);
        assert_eq!(levels[3], 0);
        assert_eq!(dag.roots().len(), 3);
    }

    #[test]
    fn barrier_synchronises_everything_after_it() {
        let mut b = CircuitBuilder::new("bar");
        let q = b.register("q", QubitRole::Data, 3);
        b.h(q[0]).unwrap();
        b.barrier_all().unwrap();
        b.h(q[2]).unwrap();
        let c = b.build();
        let dag = c.dependency_dag();
        let levels = dag.asap_levels();
        // The trailing H depends on the barrier, which depends on the first H.
        assert_eq!(levels, vec![0, 1, 2]);
    }

    #[test]
    fn critical_path_uses_latency_model() {
        let c = chain_circuit();
        let model = LatencyModel::default();
        let dag = c.dependency_dag();
        let expected = model.single_qubit + 2 * model.cnot + model.measure;
        assert_eq!(dag.critical_path_cycles(&c, &model), expected);
        assert_eq!(c.critical_path_cycles(&model), expected);
    }

    #[test]
    fn asap_start_cycles_monotone_along_chains() {
        let c = chain_circuit();
        let dag = c.dependency_dag();
        let starts = dag.asap_start_cycles(&c, &LatencyModel::default());
        assert!(starts.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(starts[0], 0);
    }

    #[test]
    fn successors_mirror_predecessors() {
        let c = chain_circuit();
        let dag = c.dependency_dag();
        for i in 0..dag.num_gates() {
            let g = GateId::new(i as u32);
            for p in dag.predecessors(g) {
                assert!(dag.successors(*p).contains(&g));
            }
        }
    }

    #[test]
    fn empty_circuit_depth_zero() {
        let c = CircuitBuilder::new("empty").build();
        let dag = c.dependency_dag();
        assert_eq!(dag.depth(), 0);
        assert_eq!(dag.num_gates(), 0);
        assert!(dag.roots().is_empty());
    }
}
