//! ASAP level scheduling of circuits into parallel timesteps.

use serde::{Deserialize, Serialize};

use crate::{Circuit, GateId, LatencyModel};

/// One parallel step of a [`Schedule`]: a set of gates whose dependency levels
/// allow them to begin together.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeStep {
    gates: Vec<GateId>,
}

impl TimeStep {
    /// Creates a timestep from a gate list.
    pub fn new(gates: Vec<GateId>) -> Self {
        TimeStep { gates }
    }

    /// Gates scheduled in this step.
    pub fn gates(&self) -> &[GateId] {
        &self.gates
    }

    /// Number of gates in this step.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the step holds no gates.
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }
}

/// A dependency-respecting partition of a circuit's gates into parallel steps.
///
/// The schedule is the *logical* schedule (unbounded communication resources);
/// realised latency on a mesh additionally depends on braid congestion and is
/// produced by the simulator crate.
///
/// # Example
///
/// ```
/// use msfu_circuit::{CircuitBuilder, QubitRole, Schedule};
///
/// let mut b = CircuitBuilder::new("s");
/// let q = b.register("q", QubitRole::Data, 4);
/// b.cnot(q[0], q[1]).unwrap();
/// b.cnot(q[2], q[3]).unwrap();
/// b.cnot(q[1], q[2]).unwrap();
/// let c = b.build();
/// let s = Schedule::asap(&c);
/// assert_eq!(s.num_steps(), 2);
/// assert_eq!(s.step(0).len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Schedule {
    steps: Vec<TimeStep>,
}

impl Schedule {
    /// Builds the ASAP (as-soon-as-possible) schedule of a circuit: each gate
    /// is placed at its dependency level.
    pub fn asap(circuit: &Circuit) -> Self {
        let dag = circuit.dependency_dag();
        let levels = dag.asap_levels();
        let depth = dag.depth();
        let mut steps: Vec<Vec<GateId>> = vec![Vec::new(); depth];
        for (i, level) in levels.iter().enumerate() {
            steps[*level].push(GateId::new(i as u32));
        }
        Schedule {
            steps: steps.into_iter().map(TimeStep::new).collect(),
        }
    }

    /// Number of parallel steps.
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Returns the `i`-th step.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn step(&self, i: usize) -> &TimeStep {
        &self.steps[i]
    }

    /// All steps in order.
    pub fn steps(&self) -> &[TimeStep] {
        &self.steps
    }

    /// Iterates over the steps.
    pub fn iter(&self) -> std::slice::Iter<'_, TimeStep> {
        self.steps.iter()
    }

    /// Total number of gates across all steps.
    pub fn num_gates(&self) -> usize {
        self.steps.iter().map(TimeStep::len).sum()
    }

    /// Maximum number of gates placed in any single step (a proxy for the
    /// instruction bandwidth the control system must sustain).
    pub fn max_parallelism(&self) -> usize {
        self.steps.iter().map(TimeStep::len).max().unwrap_or(0)
    }

    /// Sum over steps of the largest gate latency in the step; an idealised
    /// latency estimate that assumes unlimited routing resources but serial
    /// steps.
    pub fn stepwise_latency(&self, circuit: &Circuit, model: &LatencyModel) -> u64 {
        self.steps
            .iter()
            .map(|s| {
                s.gates()
                    .iter()
                    .map(|g| model.cycles(circuit.gate(*g)))
                    .max()
                    .unwrap_or(0)
            })
            .sum()
    }
}

impl<'a> IntoIterator for &'a Schedule {
    type Item = &'a TimeStep;
    type IntoIter = std::slice::Iter<'a, TimeStep>;

    fn into_iter(self) -> Self::IntoIter {
        self.steps.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CircuitBuilder, QubitRole};

    fn parallel_circuit() -> Circuit {
        let mut b = CircuitBuilder::new("p");
        let q = b.register("q", QubitRole::Data, 6);
        b.cnot(q[0], q[1]).unwrap();
        b.cnot(q[2], q[3]).unwrap();
        b.cnot(q[4], q[5]).unwrap();
        b.cnot(q[1], q[2]).unwrap();
        b.cnot(q[3], q[4]).unwrap();
        b.build()
    }

    #[test]
    fn asap_groups_independent_gates() {
        let c = parallel_circuit();
        let s = Schedule::asap(&c);
        assert_eq!(s.num_steps(), 2);
        assert_eq!(s.step(0).len(), 3);
        assert_eq!(s.step(1).len(), 2);
        assert_eq!(s.num_gates(), c.num_gates());
        assert_eq!(s.max_parallelism(), 3);
    }

    #[test]
    fn every_gate_appears_exactly_once() {
        let c = parallel_circuit();
        let s = Schedule::asap(&c);
        let mut seen = vec![false; c.num_gates()];
        for step in &s {
            for g in step.gates() {
                assert!(!seen[g.index()], "gate scheduled twice");
                seen[g.index()] = true;
            }
        }
        assert!(seen.iter().all(|&x| x));
    }

    #[test]
    fn schedule_respects_dependencies() {
        let c = parallel_circuit();
        let s = Schedule::asap(&c);
        let dag = c.dependency_dag();
        // position of each gate
        let mut pos = vec![0usize; c.num_gates()];
        for (i, step) in s.steps().iter().enumerate() {
            for g in step.gates() {
                pos[g.index()] = i;
            }
        }
        for (id, _) in c.iter_gates() {
            for p in dag.predecessors(id) {
                assert!(pos[p.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn stepwise_latency_at_least_critical_path_over_depth() {
        let c = parallel_circuit();
        let s = Schedule::asap(&c);
        let model = LatencyModel::default();
        let lat = s.stepwise_latency(&c, &model);
        assert!(lat >= c.critical_path_cycles(&model) / s.num_steps().max(1) as u64);
        assert!(lat >= 2 * model.cnot);
    }

    #[test]
    fn empty_circuit_schedule() {
        let c = CircuitBuilder::new("e").build();
        let s = Schedule::asap(&c);
        assert_eq!(s.num_steps(), 0);
        assert_eq!(s.num_gates(), 0);
        assert_eq!(s.max_parallelism(), 0);
    }
}
