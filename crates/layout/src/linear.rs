//! The Fowler-style linear (hand-tuned) baseline mapper ("Line" in Table I).

use msfu_circuit::QubitId;
use msfu_distill::{Factory, ModuleInfo};

use crate::{Coord, FactoryMapper, Layout, LayoutError, Mapping, Result};

/// Hand-tuned per-module layout in the spirit of Fowler, Devitt and Jones'
/// linear arrangement, which the paper uses as its baseline.
///
/// Each Bravyi-Haah module is laid out as a block of `k+5` columns and five
/// rows, one column per ancilla:
///
/// ```text
/// row 0:  raw[2i-2]   (the injectT source of ancilla i)
/// row 1:  anc[i]      (the ancilla chain, anc[0] in column 0)
/// row 2:  raw[2i-1]   (the injectTdag source of ancilla i)
/// row 3:  out[i-5]    (output j sits above/below its CNOT partner anc[5+j])
/// row 4:  raw[2k+8+(i-5)] (the tail injection source of ancilla 5+j)
/// ```
///
/// so every raw state and every output sits orthogonally adjacent to the
/// ancilla it interacts with, and the ancilla chain itself is a straight
/// horizontal line. Module blocks are tiled in a near-square grid of blocks.
/// Local qubits of later rounds that were not recycled (the no-reuse policy)
/// are appended in compact two-row blocks below the main array.
#[derive(Debug, Clone, Default)]
pub struct LinearMapper {
    _private: (),
}

impl LinearMapper {
    /// Creates the mapper.
    pub fn new() -> Self {
        LinearMapper::default()
    }

    /// Width (columns) of one module block for per-module capacity `k`.
    pub fn block_width(k: usize) -> usize {
        k + 5
    }

    /// Height (rows) of one module block.
    pub const fn block_height() -> usize {
        5
    }

    /// Positions of a module's local qubits relative to the top-left corner of
    /// its block, following the hand layout described on the type.
    fn module_offsets(module: &ModuleInfo, k: usize) -> Vec<(QubitId, usize, usize)> {
        let mut placements = Vec::new();
        // Ancilla chain on row 1.
        for (i, &a) in module.ancillas.iter().enumerate() {
            placements.push((a, 1, i));
        }
        // Raw inputs (only present as local qubits for round-0 modules).
        if module.round == 0 {
            for i in 1..k + 5 {
                placements.push((module.raw_inputs[2 * i - 2], 0, i));
                placements.push((module.raw_inputs[2 * i - 1], 2, i));
            }
            for i in 0..k {
                placements.push((module.raw_inputs[2 * k + 8 + i], 4, 5 + i));
            }
        }
        // Outputs on row 3, above the tail ancillas they couple to.
        for (j, &o) in module.outputs.iter().enumerate() {
            placements.push((o, 3, 5 + j));
        }
        placements
    }
}

impl FactoryMapper for LinearMapper {
    fn name(&self) -> &'static str {
        "linear"
    }

    fn map_factory(&self, factory: &Factory) -> Result<Layout> {
        let k = factory.config().k;
        let num_qubits = factory.num_qubits();
        if num_qubits == 0 {
            return Err(LayoutError::UnsupportedFactory {
                reason: "factory has no qubits".into(),
            });
        }
        let block_w = Self::block_width(k);
        let block_h = Self::block_height();

        // Round-0 blocks tiled in a near-square arrangement.
        let round0 = factory.round_modules(0);
        let blocks = round0.len();
        let blocks_per_row = (blocks as f64).sqrt().ceil() as usize;
        let block_rows = blocks.div_ceil(blocks_per_row);

        let width = blocks_per_row * block_w;
        let mut height = block_rows * block_h;
        // Reserve space for any later-round qubits that were not recycled.
        let unrecycled: usize = factory
            .modules()
            .iter()
            .filter(|m| m.round > 0)
            .map(|m| m.ancillas.len() + m.outputs.len())
            .sum();
        // Worst case every one of them needs a fresh cell below the array.
        let extra_rows = unrecycled.div_ceil(width.max(1)) + 1;
        height += extra_rows;

        let mut mapping = Mapping::new(num_qubits, width, height);

        // Place round-0 modules.
        for (idx, module) in round0.iter().enumerate() {
            let block_row = idx / blocks_per_row;
            let block_col = idx % blocks_per_row;
            let base_row = block_row * block_h;
            let base_col = block_col * block_w;
            for (q, dr, dc) in Self::module_offsets(module, k) {
                mapping.place(q, Coord::new(base_row + dr, base_col + dc))?;
            }
        }

        // Later rounds: place any local qubit that was not recycled (i.e. has
        // no position yet) into the overflow rows, module by module, so that
        // each module's fresh qubits stay contiguous.
        let mut cursor_row = block_rows * block_h;
        let mut cursor_col = 0usize;
        for round in 1..factory.rounds().len() {
            for module in factory.round_modules(round) {
                for &q in module.ancillas.iter().chain(module.outputs.iter()) {
                    if mapping.position(q).is_some() {
                        continue;
                    }
                    if cursor_col >= width {
                        cursor_col = 0;
                        cursor_row += 1;
                    }
                    if cursor_row >= mapping.height() {
                        mapping.grow_rows(1);
                    }
                    mapping.place(q, Coord::new(cursor_row, cursor_col))?;
                    cursor_col += 1;
                }
            }
        }

        Ok(Layout::new(mapping))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_distill::{FactoryConfig, ReusePolicy};
    use msfu_graph::{metrics, InteractionGraph};

    #[test]
    fn single_level_layout_is_complete_and_compact() {
        let f = Factory::build(&FactoryConfig::single_level(8)).unwrap();
        let layout = LinearMapper::new().map_factory(&f).unwrap();
        assert!(layout.mapping.is_complete());
        // Block is 13 columns x 5 rows = 65 cells; used area must fit in it.
        assert!(layout.mapping.used_area() <= 5 * (8 + 5));
        assert!(layout.mapping.used_area() >= f.num_qubits());
    }

    #[test]
    fn adjacent_interactions_are_short() {
        // The hand layout puts injection sources next to their ancillas, so
        // the average edge length must be small (well below the block width).
        let f = Factory::build(&FactoryConfig::single_level(4)).unwrap();
        let layout = LinearMapper::new().map_factory(&f).unwrap();
        let g = InteractionGraph::from_circuit(f.circuit());
        let avg = metrics::average_edge_length(&g, &layout.mapping.to_points());
        assert!(
            avg < 4.0,
            "average edge length {avg} too long for a hand layout"
        );
    }

    #[test]
    fn two_level_reuse_layout_is_complete() {
        let f =
            Factory::build(&FactoryConfig::two_level(2).with_reuse(ReusePolicy::Reuse)).unwrap();
        let layout = LinearMapper::new().map_factory(&f).unwrap();
        assert!(layout.mapping.is_complete());
    }

    #[test]
    fn two_level_no_reuse_layout_is_complete_and_larger() {
        let reuse = LinearMapper::new()
            .map_factory(
                &Factory::build(&FactoryConfig::two_level(2).with_reuse(ReusePolicy::Reuse))
                    .unwrap(),
            )
            .unwrap();
        let no_reuse = LinearMapper::new()
            .map_factory(
                &Factory::build(&FactoryConfig::two_level(2).with_reuse(ReusePolicy::NoReuse))
                    .unwrap(),
            )
            .unwrap();
        assert!(no_reuse.mapping.is_complete());
        assert!(no_reuse.mapping.occupied_count() > reuse.mapping.occupied_count());
    }

    #[test]
    fn no_two_qubits_share_a_cell() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let layout = LinearMapper::new().map_factory(&f).unwrap();
        let mut seen = std::collections::HashSet::new();
        for q in 0..f.num_qubits() as u32 {
            let pos = layout.mapping.position(QubitId::new(q)).unwrap();
            assert!(seen.insert(pos), "cell {pos} assigned twice");
        }
    }

    #[test]
    fn mapper_reports_its_name() {
        assert_eq!(LinearMapper::new().name(), "linear");
    }
}
