//! Placement cost model used by the annealing mappers.
//!
//! The force-directed annealer accepts or rejects vertex moves based on a
//! scalar cost combining the congestion heuristics of Section VI-A: weighted
//! edge length and edge crossings. (Edge spacing is tracked as a metric but
//! not folded into the per-move cost: its full evaluation is `O(m²)` per move
//! and its correlation with latency is the weakest of the three.)

use msfu_graph::geometry::{segments_cross, Point};
use msfu_graph::InteractionGraph;

/// Relative weights of the cost components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight of the total weighted Manhattan edge length.
    pub edge_length: f64,
    /// Weight of each edge crossing.
    pub crossing: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // Crossings correlate with latency more strongly than length
        // (r = 0.83 vs 0.60 in Fig. 6), so they carry a heavier weight.
        CostWeights {
            edge_length: 1.0,
            crossing: 10.0,
        }
    }
}

/// Evaluates placement costs, with support for cheap incremental evaluation
/// of single-vertex moves.
#[derive(Debug, Clone)]
pub struct CostModel<'g> {
    graph: &'g InteractionGraph,
    weights: CostWeights,
}

impl<'g> CostModel<'g> {
    /// Creates a cost model over a graph.
    pub fn new(graph: &'g InteractionGraph, weights: CostWeights) -> Self {
        CostModel { graph, weights }
    }

    /// The weights in use.
    pub fn weights(&self) -> CostWeights {
        self.weights
    }

    /// Full cost of a placement: weighted edge length plus crossing penalty.
    pub fn total(&self, positions: &[Point]) -> f64 {
        let length: f64 = self
            .graph
            .edges()
            .iter()
            .map(|(u, v, w)| w * positions[*u].manhattan_distance(&positions[*v]))
            .sum();
        let crossings = msfu_graph::metrics::edge_crossings(self.graph, positions) as f64;
        self.weights.edge_length * length + self.weights.crossing * crossings
    }

    /// Cost contribution of the edges incident to `vertex`: their weighted
    /// lengths plus the crossings they participate in. The difference of this
    /// quantity before and after a single-vertex move equals the change in
    /// total cost (crossings between two edges both incident to the moved
    /// vertex are counted consistently on both sides).
    pub fn vertex_contribution(&self, vertex: usize, positions: &[Point]) -> f64 {
        let mut length = 0.0;
        for (nb, w) in self.graph.neighbors(vertex) {
            length += w * positions[vertex].manhattan_distance(&positions[*nb]);
        }
        let mut crossings = 0usize;
        for (nb, _) in self.graph.neighbors(vertex) {
            let a1 = positions[vertex];
            let a2 = positions[*nb];
            for (u, v, _) in self.graph.edges() {
                // Skip edges incident to the moved vertex or sharing the
                // neighbour endpoint (shared endpoints never count).
                if *u == vertex || *v == vertex || *u == *nb || *v == *nb {
                    continue;
                }
                if segments_cross(a1, a2, positions[*u], positions[*v]) {
                    crossings += 1;
                }
            }
        }
        self.weights.edge_length * length + self.weights.crossing * crossings as f64
    }

    /// Change in total cost if `vertex` moves from its current position to
    /// `candidate` (negative is an improvement).
    pub fn move_delta(&self, vertex: usize, positions: &mut [Point], candidate: Point) -> f64 {
        let before = self.vertex_contribution(vertex, positions);
        let original = positions[vertex];
        positions[vertex] = candidate;
        let after = self.vertex_contribution(vertex, positions);
        positions[vertex] = original;
        after - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_graph() -> InteractionGraph {
        InteractionGraph::from_edges(4, [(0, 2, 1.0), (1, 3, 1.0)])
    }

    fn square_positions() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ]
    }

    #[test]
    fn total_counts_length_and_crossings() {
        let g = square_graph();
        let pos = square_positions();
        let model = CostModel::new(
            &g,
            CostWeights {
                edge_length: 1.0,
                crossing: 100.0,
            },
        );
        // Two diagonals of Manhattan length 4 each, one crossing.
        assert_eq!(model.total(&pos), 8.0 + 100.0);
    }

    #[test]
    fn move_delta_matches_full_recomputation() {
        let g = square_graph();
        let mut pos = square_positions();
        let model = CostModel::new(&g, CostWeights::default());
        let candidate = Point::new(3.0, 3.0);
        let before_total = model.total(&pos);
        let delta = model.move_delta(0, &mut pos, candidate);
        pos[0] = candidate;
        let after_total = model.total(&pos);
        assert!((after_total - before_total - delta).abs() < 1e-9);
    }

    #[test]
    fn uncrossing_move_has_negative_delta() {
        let g = square_graph();
        let mut pos = square_positions();
        let model = CostModel::new(&g, CostWeights::default());
        // Moving vertex 0 next to vertex 2 removes the crossing and shortens
        // its edge.
        let delta = model.move_delta(0, &mut pos, Point::new(2.0, 1.0));
        assert!(delta < 0.0);
    }

    #[test]
    fn default_weights_prioritise_crossings() {
        let w = CostWeights::default();
        assert!(w.crossing > w.edge_length);
    }
}
