//! Placement cost model used by the annealing mappers.
//!
//! The force-directed annealer accepts or rejects vertex moves based on a
//! scalar cost combining the congestion heuristics of Section VI-A: weighted
//! edge length and edge crossings. (Edge spacing is tracked as a metric but
//! not folded into the per-move cost: its full evaluation is `O(m²)` per move
//! and its correlation with latency is the weakest of the three.)

use msfu_graph::geometry::{segments_cross, Point};
use msfu_graph::InteractionGraph;

/// Relative weights of the cost components.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostWeights {
    /// Weight of the total weighted Manhattan edge length.
    pub edge_length: f64,
    /// Weight of each edge crossing.
    pub crossing: f64,
}

impl Default for CostWeights {
    fn default() -> Self {
        // Crossings correlate with latency more strongly than length
        // (r = 0.83 vs 0.60 in Fig. 6), so they carry a heavier weight.
        CostWeights {
            edge_length: 1.0,
            crossing: 10.0,
        }
    }
}

/// Evaluates placement costs, with support for cheap incremental evaluation
/// of single-vertex moves.
#[derive(Debug, Clone)]
pub struct CostModel<'g> {
    graph: &'g InteractionGraph,
    weights: CostWeights,
}

impl<'g> CostModel<'g> {
    /// Creates a cost model over a graph.
    pub fn new(graph: &'g InteractionGraph, weights: CostWeights) -> Self {
        CostModel { graph, weights }
    }

    /// The weights in use.
    pub fn weights(&self) -> CostWeights {
        self.weights
    }

    /// Full cost of a placement: weighted edge length plus crossing penalty.
    pub fn total(&self, positions: &[Point]) -> f64 {
        let length: f64 = self
            .graph
            .edges()
            .iter()
            .map(|(u, v, w)| w * positions[*u].manhattan_distance(&positions[*v]))
            .sum();
        let crossings = msfu_graph::metrics::edge_crossings(self.graph, positions) as f64;
        self.weights.edge_length * length + self.weights.crossing * crossings
    }

    /// Cost contribution of the edges incident to `vertex`: their weighted
    /// lengths plus the crossings they participate in. The difference of this
    /// quantity before and after a single-vertex move equals the change in
    /// total cost (crossings between two edges both incident to the moved
    /// vertex are counted consistently on both sides).
    pub fn vertex_contribution(&self, vertex: usize, positions: &[Point]) -> f64 {
        let mut length = 0.0;
        for (nb, w) in self.graph.neighbors(vertex) {
            length += w * positions[vertex].manhattan_distance(&positions[*nb]);
        }
        let mut crossings = 0usize;
        for (nb, _) in self.graph.neighbors(vertex) {
            let a1 = positions[vertex];
            let a2 = positions[*nb];
            for (u, v, _) in self.graph.edges() {
                // Skip edges incident to the moved vertex or sharing the
                // neighbour endpoint (shared endpoints never count).
                if *u == vertex || *v == vertex || *u == *nb || *v == *nb {
                    continue;
                }
                if segments_cross(a1, a2, positions[*u], positions[*v]) {
                    crossings += 1;
                }
            }
        }
        self.weights.edge_length * length + self.weights.crossing * crossings as f64
    }

    /// Change in total cost if `vertex` moves from its current position to
    /// `candidate` (negative is an improvement).
    pub fn move_delta(&self, vertex: usize, positions: &mut [Point], candidate: Point) -> f64 {
        let before = self.vertex_contribution(vertex, positions);
        let original = positions[vertex];
        positions[vertex] = candidate;
        let after = self.vertex_contribution(vertex, positions);
        positions[vertex] = original;
        after - before
    }

    /// Builds (or rebuilds) the pruning state for `positions`: the per-vertex
    /// incident-edge index and one bounding box per edge. Must be called once
    /// before the `*_pruned` evaluators; [`CostModel::note_move`] keeps the
    /// boxes current as vertices move.
    pub fn prepare(&self, scratch: &mut CostScratch, positions: &[Point]) {
        let edges = self.graph.edges();
        let n = self.graph.num_vertices();
        scratch.inc_off.clear();
        scratch.inc_off.resize(n + 1, 0);
        for (u, v, _) in edges {
            scratch.inc_off[*u + 1] += 1;
            scratch.inc_off[*v + 1] += 1;
        }
        for i in 0..n {
            scratch.inc_off[i + 1] += scratch.inc_off[i];
        }
        scratch.inc_edge.clear();
        scratch.inc_edge.resize(scratch.inc_off[n], 0);
        let mut cursor = scratch.inc_off.clone();
        for (e, (u, v, _)) in edges.iter().enumerate() {
            scratch.inc_edge[cursor[*u]] = e;
            cursor[*u] += 1;
            scratch.inc_edge[cursor[*v]] = e;
            cursor[*v] += 1;
        }
        scratch.bbox.clear();
        scratch.bbox.extend(
            edges
                .iter()
                .map(|(u, v, _)| edge_bbox(positions[*u], positions[*v])),
        );
    }

    /// Refreshes the bounding boxes of every edge incident to `vertex` after
    /// its position changed. O(degree).
    pub fn note_move(&self, scratch: &mut CostScratch, vertex: usize, positions: &[Point]) {
        let edges = self.graph.edges();
        let lo = scratch.inc_off[vertex];
        let hi = scratch.inc_off[vertex + 1];
        for i in lo..hi {
            let e = scratch.inc_edge[i];
            let (u, v, _) = edges[e];
            scratch.bbox[e] = edge_bbox(positions[u], positions[v]);
        }
    }

    /// [`CostModel::total`] with bounding-box rejection in front of every
    /// segment-intersection test. Requires `scratch` prepared for `positions`
    /// (see [`CostModel::prepare`]); the returned value is bit-identical to
    /// [`CostModel::total`] — pruning only skips pairs that provably cannot
    /// cross.
    pub fn total_pruned(&self, scratch: &CostScratch, positions: &[Point]) -> f64 {
        let edges = self.graph.edges();
        let length: f64 = edges
            .iter()
            .map(|(u, v, w)| w * positions[*u].manhattan_distance(&positions[*v]))
            .sum();
        let mut crossings = 0usize;
        for i in 0..edges.len() {
            let (a, b, _) = edges[i];
            for (j, (c, d, _)) in edges.iter().enumerate().skip(i + 1) {
                if a == *c || a == *d || b == *c || b == *d {
                    continue;
                }
                if !boxes_overlap(&scratch.bbox[i], &scratch.bbox[j]) {
                    continue;
                }
                if segments_cross(positions[a], positions[b], positions[*c], positions[*d]) {
                    crossings += 1;
                }
            }
        }
        self.weights.edge_length * length + self.weights.crossing * crossings as f64
    }

    /// [`CostModel::vertex_contribution`], pruned: instead of testing every
    /// incident edge against every other edge, each other edge is first
    /// rejected against the bounding box of the moved vertex's whole edge
    /// star, then against the individual incident edge's box. The star boxes
    /// are computed from the live `positions` (so a trial position is
    /// honoured even before [`CostModel::note_move`]); the boxes of all other
    /// edges come from `scratch`. Bit-identical to the unpruned evaluator.
    pub fn vertex_contribution_pruned(
        &self,
        scratch: &mut CostScratch,
        vertex: usize,
        positions: &[Point],
    ) -> f64 {
        let nbs = self.graph.neighbors(vertex);
        let p_v = positions[vertex];
        let mut length = 0.0;
        for (nb, w) in nbs {
            length += w * p_v.manhattan_distance(&positions[*nb]);
        }
        let mut crossings = 0usize;
        if !nbs.is_empty() {
            // Star bbox + one live box per incident edge.
            scratch.star.clear();
            let mut star = [
                f64::INFINITY,
                f64::NEG_INFINITY,
                f64::INFINITY,
                f64::NEG_INFINITY,
            ];
            for (nb, _) in nbs {
                let eb = edge_bbox(p_v, positions[*nb]);
                star[0] = star[0].min(eb[0]);
                star[1] = star[1].max(eb[1]);
                star[2] = star[2].min(eb[2]);
                star[3] = star[3].max(eb[3]);
                scratch.star.push(eb);
            }
            for (e, (u, v, _)) in self.graph.edges().iter().enumerate() {
                if *u == vertex || *v == vertex {
                    continue;
                }
                if !boxes_overlap(&scratch.bbox[e], &star) {
                    continue;
                }
                for ((nb, _), eb) in nbs.iter().zip(scratch.star.iter()) {
                    if *u == *nb || *v == *nb {
                        continue;
                    }
                    if !boxes_overlap(&scratch.bbox[e], eb) {
                        continue;
                    }
                    if segments_cross(p_v, positions[*nb], positions[*u], positions[*v]) {
                        crossings += 1;
                    }
                }
            }
        }
        self.weights.edge_length * length + self.weights.crossing * crossings as f64
    }

    /// [`CostModel::move_delta`], pruned. Bit-identical to the unpruned
    /// evaluator.
    pub fn move_delta_pruned(
        &self,
        scratch: &mut CostScratch,
        vertex: usize,
        positions: &mut [Point],
        candidate: Point,
    ) -> f64 {
        let before = self.vertex_contribution_pruned(scratch, vertex, positions);
        let original = positions[vertex];
        positions[vertex] = candidate;
        let after = self.vertex_contribution_pruned(scratch, vertex, positions);
        positions[vertex] = original;
        after - before
    }
}

/// Reusable pruning state for the `*_pruned` evaluators of [`CostModel`]:
/// per-edge bounding boxes kept in sync with the placement, the per-vertex
/// incident-edge index used to refresh them in O(degree) per move, and a
/// small buffer for the moved vertex's star boxes. One scratch serves any
/// number of refinement runs — buffers only ever grow.
#[derive(Debug, Clone, Default)]
pub struct CostScratch {
    /// Per-edge `[min_x, max_x, min_y, max_y]`.
    bbox: Vec<[f64; 4]>,
    /// CSR incidence: edge indices of vertex `v` live in
    /// `inc_edge[inc_off[v]..inc_off[v + 1]]`.
    inc_off: Vec<usize>,
    inc_edge: Vec<usize>,
    /// Live boxes of the moved vertex's incident edges (one per neighbor).
    star: Vec<[f64; 4]>,
}

impl CostScratch {
    /// Creates an empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Axis-aligned bounding box of the segment `(a, b)`.
fn edge_bbox(a: Point, b: Point) -> [f64; 4] {
    [a.x.min(b.x), a.x.max(b.x), a.y.min(b.y), a.y.max(b.y)]
}

/// Inflated by a margin larger than every epsilon inside `segments_cross`, so
/// a rejected pair can never have been reported as crossing.
const BOX_MARGIN: f64 = 1e-6;

fn boxes_overlap(a: &[f64; 4], b: &[f64; 4]) -> bool {
    a[0] <= b[1] + BOX_MARGIN
        && b[0] <= a[1] + BOX_MARGIN
        && a[2] <= b[3] + BOX_MARGIN
        && b[2] <= a[3] + BOX_MARGIN
}

#[cfg(test)]
mod tests {
    use super::*;

    fn square_graph() -> InteractionGraph {
        InteractionGraph::from_edges(4, [(0, 2, 1.0), (1, 3, 1.0)])
    }

    fn square_positions() -> Vec<Point> {
        vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(2.0, 2.0),
            Point::new(0.0, 2.0),
        ]
    }

    #[test]
    fn total_counts_length_and_crossings() {
        let g = square_graph();
        let pos = square_positions();
        let model = CostModel::new(
            &g,
            CostWeights {
                edge_length: 1.0,
                crossing: 100.0,
            },
        );
        // Two diagonals of Manhattan length 4 each, one crossing.
        assert_eq!(model.total(&pos), 8.0 + 100.0);
    }

    #[test]
    fn move_delta_matches_full_recomputation() {
        let g = square_graph();
        let mut pos = square_positions();
        let model = CostModel::new(&g, CostWeights::default());
        let candidate = Point::new(3.0, 3.0);
        let before_total = model.total(&pos);
        let delta = model.move_delta(0, &mut pos, candidate);
        pos[0] = candidate;
        let after_total = model.total(&pos);
        assert!((after_total - before_total - delta).abs() < 1e-9);
    }

    #[test]
    fn uncrossing_move_has_negative_delta() {
        let g = square_graph();
        let mut pos = square_positions();
        let model = CostModel::new(&g, CostWeights::default());
        // Moving vertex 0 next to vertex 2 removes the crossing and shortens
        // its edge.
        let delta = model.move_delta(0, &mut pos, Point::new(2.0, 1.0));
        assert!(delta < 0.0);
    }

    #[test]
    fn default_weights_prioritise_crossings() {
        let w = CostWeights::default();
        assert!(w.crossing > w.edge_length);
    }

    /// A denser pseudo-random placement exercising collinear overlaps,
    /// T-junctions and proper crossings on integer grid coordinates.
    fn dense_case() -> (InteractionGraph, Vec<Point>) {
        let n = 12usize;
        let mut edges = Vec::new();
        for v in 0..n {
            edges.push((v, (v + 3) % n, 1.0 + v as f64));
            edges.push((v, (v + 5) % n, 2.0));
        }
        let positions: Vec<Point> = (0..n)
            .map(|v| Point::new(((v * 7) % 5) as f64, ((v * 3) % 4) as f64))
            .collect();
        (InteractionGraph::from_edges(n, edges), positions)
    }

    #[test]
    fn pruned_total_is_bit_identical() {
        let (g, pos) = dense_case();
        let model = CostModel::new(&g, CostWeights::default());
        let mut scratch = CostScratch::new();
        model.prepare(&mut scratch, &pos);
        assert_eq!(model.total_pruned(&scratch, &pos), model.total(&pos));
    }

    #[test]
    fn pruned_contribution_and_delta_are_bit_identical() {
        let (g, mut pos) = dense_case();
        let model = CostModel::new(&g, CostWeights::default());
        let mut scratch = CostScratch::new();
        model.prepare(&mut scratch, &pos);
        for v in 0..g.num_vertices() {
            assert_eq!(
                model.vertex_contribution_pruned(&mut scratch, v, &pos),
                model.vertex_contribution(v, &pos),
                "vertex {v}"
            );
            let candidate = Point::new(((v * 2) % 6) as f64, ((v + 1) % 5) as f64);
            assert_eq!(
                model.move_delta_pruned(&mut scratch, v, &mut pos, candidate),
                model.move_delta(v, &mut pos, candidate),
                "vertex {v}"
            );
        }
    }

    #[test]
    fn note_move_keeps_boxes_in_sync() {
        let (g, mut pos) = dense_case();
        let model = CostModel::new(&g, CostWeights::default());
        let mut scratch = CostScratch::new();
        model.prepare(&mut scratch, &pos);
        // Walk a few vertices around, refreshing incident boxes after each
        // accepted move; pruned results must keep matching the exact ones.
        for v in 0..g.num_vertices() {
            pos[v] = Point::new(((v * 5) % 7) as f64, ((v * 2) % 5) as f64);
            model.note_move(&mut scratch, v, &pos);
            assert_eq!(model.total_pruned(&scratch, &pos), model.total(&pos));
            assert_eq!(
                model.vertex_contribution_pruned(&mut scratch, v, &pos),
                model.vertex_contribution(v, &pos),
            );
        }
    }
}
