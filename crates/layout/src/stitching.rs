//! Hierarchical stitching mapper ("HS" in Table I, Section VII of the paper).
//!
//! The stitching procedure exploits the structure of multi-level block-code
//! factories:
//!
//! 1. **Intra-round concatenation** — every module of a round has a planar
//!    interaction graph, so a single module prototype is embedded nearly
//!    optimally by recursive graph partitioning and replicated for every
//!    module of the round; the blocks are concatenated into a near-square
//!    arrangement (Section VII-A).
//! 2. **Qubit reuse / module arrangement** — local qubits of later rounds that
//!    were not recycled are placed as close as possible to the centroid of the
//!    output states they consume (Section VII-B1).
//! 3. **Port reassignment** — each module's output states are interchangeable,
//!    so output ports are re-bound to downstream modules to minimise
//!    permutation distance (Section VII-B2). The mapper records the desired
//!    rebinding as an explicit [`PortAssignment`] on the returned [`Layout`];
//!    the evaluation layer applies it to a private copy of the factory
//!    (`Factory::apply_port_assignment`), so mapping never mutates the shared
//!    factory. The historical mutating flow survives as
//!    [`HierarchicalStitchingMapper::map_factory_optimized`], kept as the
//!    reference implementation the artifact path is tested against.
//! 4. **Intermediate hop routing** — every permutation braid receives a
//!    Valiant-style intermediate destination, placed at the braid midpoint or
//!    at random and then annealed to minimise segment crossings and length
//!    (Section VII-B3). Hops are delivered to the simulator as
//!    [`RoutingHints`].

use std::collections::HashMap;

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use msfu_circuit::{Gate, QubitId};
use msfu_distill::{Factory, ModuleInfo, PortAssignment};
use msfu_graph::geometry::{segments_cross, Point};
use msfu_graph::InteractionGraph;

use crate::graph_partition::{embed_into_cells, rectangle_cells};
use crate::{Coord, FactoryMapper, Layout, LayoutError, Mapping, Result, RoutingHints};

/// Strategy for choosing the intermediate destination of permutation braids
/// (Fig. 9c/9d of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum HopStrategy {
    /// No intermediate destinations: braids route directly.
    None,
    /// Valiant routing: a uniformly random intermediate cell per braid.
    RandomHop,
    /// Random initial hops refined by force-directed annealing.
    AnnealedRandomHop,
    /// Hops initialised at the braid midpoint and refined by annealing
    /// (the best-performing variant in the paper).
    #[default]
    AnnealedMidpointHop,
}

impl HopStrategy {
    /// Short name used by reports.
    pub fn name(self) -> &'static str {
        match self {
            HopStrategy::None => "no-hop",
            HopStrategy::RandomHop => "random-hop",
            HopStrategy::AnnealedRandomHop => "annealed-random-hop",
            HopStrategy::AnnealedMidpointHop => "annealed-midpoint-hop",
        }
    }

    /// Parses a [`HopStrategy::name`] string back into the strategy (used by
    /// data-declared sweep specs).
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "no-hop" => Some(HopStrategy::None),
            "random-hop" => Some(HopStrategy::RandomHop),
            "annealed-random-hop" => Some(HopStrategy::AnnealedRandomHop),
            "annealed-midpoint-hop" => Some(HopStrategy::AnnealedMidpointHop),
            _ => None,
        }
    }
}

/// Tuning knobs of the hierarchical stitching mapper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StitchingConfig {
    /// RNG seed.
    pub seed: u64,
    /// Hop strategy for inter-round permutation braids.
    pub hop_strategy: HopStrategy,
    /// Whether `map_factory_optimized` performs output-port reassignment.
    pub reassign_ports: bool,
    /// Number of annealing passes over all hops.
    pub hop_anneal_passes: usize,
    /// Empty cells left between adjacent module blocks (routing slack).
    pub block_gap: usize,
}

impl Default for StitchingConfig {
    fn default() -> Self {
        StitchingConfig {
            seed: 0,
            hop_strategy: HopStrategy::AnnealedMidpointHop,
            reassign_ports: true,
            hop_anneal_passes: 20,
            block_gap: 0,
        }
    }
}

/// The hierarchical stitching mapper.
#[derive(Debug, Clone)]
pub struct HierarchicalStitchingMapper {
    config: StitchingConfig,
}

impl HierarchicalStitchingMapper {
    /// Creates a mapper with default parameters and the given seed.
    pub fn new(seed: u64) -> Self {
        HierarchicalStitchingMapper {
            config: StitchingConfig {
                seed,
                ..StitchingConfig::default()
            },
        }
    }

    /// Creates a mapper with explicit parameters.
    pub fn with_config(config: StitchingConfig) -> Self {
        HierarchicalStitchingMapper { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &StitchingConfig {
        &self.config
    }

    /// Legacy stitching flow that rewires the factory circuit *in place*
    /// (Section VII-B2) instead of recording a [`PortAssignment`].
    ///
    /// New code should use [`FactoryMapper::map_factory`], which returns the
    /// same placement and hints plus the port rebinding as an artifact on the
    /// layout. This method is kept as the reference implementation of the
    /// historical behaviour; the equivalence of the two flows is asserted by
    /// tests.
    ///
    /// # Errors
    ///
    /// Returns an error if placement fails (degenerate factory).
    pub fn map_factory_optimized(&self, factory: &mut Factory) -> Result<Layout> {
        let mapping = self.place_all_rounds(factory)?;
        if self.config.reassign_ports {
            self.reassign_ports_in_place(factory, &mapping)?;
        }
        let hints = self.compute_hops(factory, &mapping)?;
        Ok(Layout::with_hints(mapping, hints))
    }

    // ------------------------------------------------------------------
    // Phase 1 + 2: per-round block placement and later-round arrangement.
    // ------------------------------------------------------------------

    fn place_all_rounds(&self, factory: &Factory) -> Result<Mapping> {
        if factory.num_qubits() == 0 {
            return Err(LayoutError::UnsupportedFactory {
                reason: "factory has no qubits".into(),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);

        // Prototype embedding of one round-0 module.
        let round0 = factory.round_modules(0);
        let prototype = &round0[0];
        let prototype_qubits = prototype.local_qubits();
        let block_side = (prototype_qubits.len() as f64).sqrt().ceil() as usize;
        let offsets = self.prototype_offsets(factory, prototype, block_side, &mut rng);

        // Block grid for round 0.
        let blocks = round0.len();
        let blocks_per_row = (blocks as f64).sqrt().ceil() as usize;
        let block_rows = blocks.div_ceil(blocks_per_row);
        let stride = block_side + self.config.block_gap;
        let width = blocks_per_row * stride;
        let height = block_rows * stride;

        let mut mapping = Mapping::new(factory.num_qubits(), width.max(1), height.max(1));
        for (idx, module) in round0.iter().enumerate() {
            let base_row = (idx / blocks_per_row) * stride;
            let base_col = (idx % blocks_per_row) * stride;
            let locals = module.local_qubits();
            for (slot, q) in locals.iter().enumerate() {
                let (dr, dc) = offsets[slot];
                mapping.place(*q, Coord::new(base_row + dr, base_col + dc))?;
            }
        }

        // Later rounds: place fresh (non-recycled) local qubits near the
        // centroid of the output states each module consumes.
        for round in 1..factory.rounds().len() {
            for module in factory.round_modules(round) {
                let unplaced: Vec<QubitId> = module
                    .ancillas
                    .iter()
                    .chain(module.outputs.iter())
                    .copied()
                    .filter(|q| mapping.position(*q).is_none())
                    .collect();
                if unplaced.is_empty() {
                    continue;
                }
                let anchor = self.source_centroid(module, &mapping);
                self.place_near(&mut mapping, &unplaced, anchor)?;
            }
        }
        Ok(mapping)
    }

    /// Embeds the prototype module's local qubits into a `side × side` block
    /// via recursive graph partitioning, returning per-slot offsets.
    fn prototype_offsets(
        &self,
        factory: &Factory,
        prototype: &ModuleInfo,
        side: usize,
        rng: &mut ChaCha8Rng,
    ) -> Vec<(usize, usize)> {
        let locals = prototype.local_qubits();
        let slot_of: HashMap<QubitId, usize> =
            locals.iter().enumerate().map(|(i, q)| (*q, i)).collect();
        // Interaction subgraph of the prototype module, with vertices = slots.
        let mut edges = Vec::new();
        for idx in prototype.gate_range.clone() {
            for (a, b) in factory.circuit().gates()[idx].interaction_edges() {
                if let (Some(&sa), Some(&sb)) = (slot_of.get(&a), slot_of.get(&b)) {
                    edges.push((sa, sb, 1.0));
                }
            }
        }
        let graph = InteractionGraph::from_edges(locals.len(), edges);
        let cells = rectangle_cells(0, side, 0, side);
        let vertices: Vec<usize> = (0..locals.len()).collect();
        let placed = embed_into_cells(&graph, &vertices, cells, rng);
        let mut offsets = vec![(0usize, 0usize); locals.len()];
        for (slot, cell) in placed {
            offsets[slot] = (cell.row, cell.col);
        }
        offsets
    }

    /// Centroid of the already-placed raw inputs (upstream outputs) of a
    /// later-round module, used as the anchor for its own placement.
    fn source_centroid(&self, module: &ModuleInfo, mapping: &Mapping) -> Point {
        let pts: Vec<Point> = module
            .raw_inputs
            .iter()
            .filter_map(|q| mapping.position(*q))
            .map(Coord::to_point)
            .collect();
        msfu_graph::geometry::centroid(&pts)
    }

    /// Places `qubits` into the free cells nearest to `anchor`, growing the
    /// grid if there is not enough free space.
    fn place_near(&self, mapping: &mut Mapping, qubits: &[QubitId], anchor: Point) -> Result<()> {
        let mut free = mapping.free_cells();
        if free.len() < qubits.len() {
            let missing = qubits.len() - free.len();
            let rows_needed = missing.div_ceil(mapping.width().max(1)) + 1;
            mapping.grow_rows(rows_needed);
            free = mapping.free_cells();
        }
        free.sort_by(|a, b| {
            let da = a.to_point().distance(&anchor);
            let db = b.to_point().distance(&anchor);
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });
        for (q, cell) in qubits.iter().zip(free) {
            mapping.place(*q, cell)?;
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Phase 3: output-port reassignment.
    // ------------------------------------------------------------------

    /// Anchor of each module: centroid of its local qubit positions.
    fn module_anchors(factory: &Factory, mapping: &Mapping) -> HashMap<usize, Point> {
        factory
            .modules()
            .iter()
            .map(|m| {
                let pts: Vec<Point> = m
                    .local_qubits()
                    .iter()
                    .filter_map(|q| mapping.position(*q))
                    .map(Coord::to_point)
                    .collect();
                (m.id, msfu_graph::geometry::centroid(&pts))
            })
            .collect()
    }

    /// Greedy assignment for one source module: repeatedly binds the closest
    /// (output position, destination anchor) pair. `dest_of` is the module's
    /// current output → destination binding.
    fn desired_binding(
        mapping: &Mapping,
        anchors: &HashMap<usize, Point>,
        outputs: &[QubitId],
        dest_of: &HashMap<QubitId, usize>,
    ) -> HashMap<QubitId, usize> {
        let dests: Vec<usize> = outputs
            .iter()
            .filter_map(|q| dest_of.get(q).copied())
            .collect();
        let mut desired: HashMap<QubitId, usize> = HashMap::new();
        let mut free_outputs: Vec<QubitId> = outputs.to_vec();
        let mut free_dests = dests;
        while !free_outputs.is_empty() && !free_dests.is_empty() {
            let mut best = (0usize, 0usize, f64::INFINITY);
            for (i, q) in free_outputs.iter().enumerate() {
                let qp = match mapping.position(*q) {
                    Some(p) => p.to_point(),
                    None => continue,
                };
                for (j, d) in free_dests.iter().enumerate() {
                    let anchor = anchors.get(d).copied().unwrap_or_default();
                    let dist = qp.distance(&anchor);
                    if dist < best.2 {
                        best = (i, j, dist);
                    }
                }
            }
            if best.2.is_infinite() {
                break;
            }
            let q = free_outputs.remove(best.0);
            let d = free_dests.remove(best.1);
            desired.insert(q, d);
        }
        desired
    }

    /// Computes the output-port rebinding for every non-final-round module
    /// *without touching the factory*: the same greedy nearest-consumer
    /// binding as the legacy in-place flow, realised as an ordered swap list.
    /// The effect of every recorded swap on downstream bindings is tracked
    /// locally so later decisions see earlier ones, exactly as the mutating
    /// path does.
    pub fn compute_port_assignment(
        &self,
        factory: &Factory,
        mapping: &Mapping,
    ) -> Result<PortAssignment> {
        let mut assignment = PortAssignment::new();
        let levels = factory.rounds().len();
        if levels < 2 {
            return Ok(assignment);
        }
        let anchors = Self::module_anchors(factory, mapping);

        for round in 0..levels - 1 {
            for &source_id in &factory.rounds()[round].modules {
                let outputs = &factory.modules()[source_id].outputs;
                // Current binding: output qubit -> destination module
                // (simulated locally; swaps only ever touch the outputs of
                // their own module, so per-module state suffices).
                let mut dest_of: HashMap<QubitId, usize> = HashMap::new();
                for edge in factory.permutation_edges() {
                    if edge.source_module == source_id {
                        dest_of.insert(edge.source_qubit, edge.dest_module);
                    }
                }
                if dest_of.len() < 2 {
                    continue;
                }
                let desired = Self::desired_binding(mapping, &anchors, outputs, &dest_of);
                // Realise the desired binding through pairwise port swaps.
                for q in outputs {
                    let want = match desired.get(q) {
                        Some(d) => *d,
                        None => continue,
                    };
                    let current = match dest_of.get(q) {
                        Some(d) => *d,
                        None => continue,
                    };
                    if current == want {
                        continue;
                    }
                    // Find the sibling output currently bound to `want`.
                    let sibling = outputs
                        .iter()
                        .copied()
                        .find(|other| dest_of.get(other) == Some(&want));
                    if let Some(other) = sibling {
                        assignment.push_swap(*q, other);
                        dest_of.insert(*q, want);
                        dest_of.insert(other, current);
                    }
                }
            }
        }
        Ok(assignment)
    }

    /// For every non-final-round module, re-binds its output ports to the
    /// downstream modules so that each state travels to the nearest consumer,
    /// mutating the factory as it goes. Legacy reference implementation for
    /// [`HierarchicalStitchingMapper::map_factory_optimized`]; the artifact
    /// path is [`HierarchicalStitchingMapper::compute_port_assignment`].
    fn reassign_ports_in_place(&self, factory: &mut Factory, mapping: &Mapping) -> Result<()> {
        let levels = factory.rounds().len();
        if levels < 2 {
            return Ok(());
        }
        let anchors = Self::module_anchors(factory, mapping);

        for round in 0..levels - 1 {
            let source_ids: Vec<usize> = factory.rounds()[round].modules.clone();
            for source_id in source_ids {
                // Current binding: output qubit -> destination module.
                let outputs = factory.modules()[source_id].outputs.clone();
                let mut dest_of: HashMap<QubitId, usize> = HashMap::new();
                for edge in factory.permutation_edges() {
                    if edge.source_module == source_id {
                        dest_of.insert(edge.source_qubit, edge.dest_module);
                    }
                }
                if dest_of.len() < 2 {
                    continue;
                }
                let desired = Self::desired_binding(mapping, &anchors, &outputs, &dest_of);
                // Realise the desired binding through pairwise port swaps.
                for q in &outputs {
                    let want = match desired.get(q) {
                        Some(d) => *d,
                        None => continue,
                    };
                    let current = match current_dest(factory, source_id, *q) {
                        Some(d) => d,
                        None => continue,
                    };
                    if current == want {
                        continue;
                    }
                    // Find the sibling output currently bound to `want`.
                    let sibling = factory.modules()[source_id]
                        .outputs
                        .iter()
                        .copied()
                        .find(|other| current_dest(factory, source_id, *other) == Some(want));
                    if let Some(other) = sibling {
                        factory.swap_output_ports(*q, other).map_err(|e| {
                            LayoutError::UnsupportedFactory {
                                reason: format!("port swap failed: {e}"),
                            }
                        })?;
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Phase 4: intermediate hop routing.
    // ------------------------------------------------------------------

    /// Computes waypoint hints for every permutation braid according to the
    /// configured [`HopStrategy`].
    fn compute_hops(&self, factory: &Factory, mapping: &Mapping) -> Result<RoutingHints> {
        let mut hints = RoutingHints::new();
        if self.config.hop_strategy == HopStrategy::None || factory.rounds().len() < 2 {
            return Ok(hints);
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed.wrapping_add(1));

        // Collect the permutation braids: (source qubit, consumer qubit).
        let mut braids: Vec<(QubitId, QubitId, Coord, Coord)> = Vec::new();
        for round in 0..factory.rounds().len() - 1 {
            let perm = factory.permutation_circuit(round);
            for gate in perm.gates() {
                if let Gate::InjectT { raw, target } | Gate::InjectTdg { raw, target } = gate {
                    let src = mapping.require_position(*raw)?;
                    let dst = mapping.require_position(*target)?;
                    braids.push((*raw, *target, src, dst));
                }
            }
        }
        if braids.is_empty() {
            return Ok(hints);
        }

        let width = mapping.width();
        let height = mapping.height();
        let mut hops: Vec<Coord> = braids
            .iter()
            .map(|(_, _, src, dst)| match self.config.hop_strategy {
                HopStrategy::RandomHop | HopStrategy::AnnealedRandomHop => {
                    Coord::new(rng.gen_range(0..height), rng.gen_range(0..width))
                }
                _ => Coord::new((src.row + dst.row) / 2, (src.col + dst.col) / 2),
            })
            .collect();

        if matches!(
            self.config.hop_strategy,
            HopStrategy::AnnealedRandomHop | HopStrategy::AnnealedMidpointHop
        ) {
            self.anneal_hops(&braids, &mut hops, width, height, &mut rng);
        }

        for ((raw, target, _, _), hop) in braids.iter().zip(hops.iter()) {
            hints.set_waypoint(*raw, *target, *hop);
        }
        Ok(hints)
    }

    /// Greedy annealing of hop positions: each pass proposes a neighbouring
    /// cell (or a random jump) for every hop and keeps it when the objective
    /// (total path length + crossing penalty among permutation paths)
    /// decreases.
    fn anneal_hops(
        &self,
        braids: &[(QubitId, QubitId, Coord, Coord)],
        hops: &mut [Coord],
        width: usize,
        height: usize,
        rng: &mut ChaCha8Rng,
    ) {
        const CROSSING_WEIGHT: f64 = 10.0;
        let objective_for = |idx: usize, hop: Coord, hops: &[Coord]| -> f64 {
            let (_, _, src, dst) = braids[idx];
            let mut cost = (src.manhattan_distance(&hop) + hop.manhattan_distance(&dst)) as f64;
            let segs = [
                (src.to_point(), hop.to_point()),
                (hop.to_point(), dst.to_point()),
            ];
            for (j, (_, _, osrc, odst)) in braids.iter().enumerate() {
                if j == idx {
                    continue;
                }
                let other = [
                    (osrc.to_point(), hops[j].to_point()),
                    (hops[j].to_point(), odst.to_point()),
                ];
                for (a1, a2) in &segs {
                    for (b1, b2) in &other {
                        if segments_cross(*a1, *a2, *b1, *b2) {
                            cost += CROSSING_WEIGHT;
                        }
                    }
                }
            }
            cost
        };

        for _pass in 0..self.config.hop_anneal_passes {
            let mut improved = false;
            for idx in 0..braids.len() {
                let current = hops[idx];
                let current_cost = objective_for(idx, current, hops);
                // Candidate moves: the four neighbours plus one random jump.
                let mut candidates = current.neighbors(width, height);
                candidates.push(Coord::new(
                    rng.gen_range(0..height),
                    rng.gen_range(0..width),
                ));
                let mut best = current;
                let mut best_cost = current_cost;
                for cand in candidates {
                    let c = objective_for(idx, cand, hops);
                    if c < best_cost {
                        best_cost = c;
                        best = cand;
                    }
                }
                if best != current {
                    hops[idx] = best;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
    }
}

/// Current destination module of a source output qubit, per the factory's
/// permutation metadata.
fn current_dest(factory: &Factory, source_module: usize, output: QubitId) -> Option<usize> {
    factory
        .permutation_edges()
        .iter()
        .find(|e| e.source_module == source_module && e.source_qubit == output)
        .map(|e| e.dest_module)
}

impl FactoryMapper for HierarchicalStitchingMapper {
    fn name(&self) -> &'static str {
        "hierarchical-stitching"
    }

    fn map_factory(&self, factory: &Factory) -> Result<Layout> {
        let mapping = self.place_all_rounds(factory)?;
        let ports = if self.config.reassign_ports {
            self.compute_port_assignment(factory, &mapping)?
        } else {
            PortAssignment::new()
        };
        if ports.is_empty() {
            let hints = self.compute_hops(factory, &mapping)?;
            return Ok(Layout::with_hints(mapping, hints));
        }
        // Hop routing reads the permutation gates, which the port rebinding
        // relabels; compute hops against a rewired private copy so they match
        // the circuit the simulator will eventually run.
        let rewired =
            factory
                .apply_port_assignment(&ports)
                .map_err(|e| LayoutError::UnsupportedFactory {
                    reason: format!("port assignment failed: {e}"),
                })?;
        let hints = self.compute_hops(&rewired, &mapping)?;
        Ok(Layout::with_hints(mapping, hints).with_ports(ports))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_distill::{FactoryConfig, ReusePolicy};
    use msfu_graph::metrics;

    #[test]
    fn hop_strategy_names_are_distinct() {
        let names = [
            HopStrategy::None.name(),
            HopStrategy::RandomHop.name(),
            HopStrategy::AnnealedRandomHop.name(),
            HopStrategy::AnnealedMidpointHop.name(),
        ];
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn single_level_stitching_is_complete() {
        let f = Factory::build(&FactoryConfig::single_level(4)).unwrap();
        let layout = HierarchicalStitchingMapper::new(1).map_factory(&f).unwrap();
        assert!(layout.mapping.is_complete());
        assert!(layout.hints.is_empty());
    }

    #[test]
    fn two_level_stitching_is_complete_with_hints() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let layout = HierarchicalStitchingMapper::new(1).map_factory(&f).unwrap();
        assert!(layout.mapping.is_complete());
        // Every permutation edge receives a waypoint.
        assert_eq!(layout.hints.len(), f.permutation_edges().len());
    }

    #[test]
    fn no_hop_strategy_produces_no_hints() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let mapper = HierarchicalStitchingMapper::with_config(StitchingConfig {
            hop_strategy: HopStrategy::None,
            ..StitchingConfig::default()
        });
        let layout = mapper.map_factory(&f).unwrap();
        assert!(layout.hints.is_empty());
    }

    #[test]
    fn no_reuse_factory_places_fresh_round1_qubits() {
        let f =
            Factory::build(&FactoryConfig::two_level(2).with_reuse(ReusePolicy::NoReuse)).unwrap();
        let layout = HierarchicalStitchingMapper::new(3).map_factory(&f).unwrap();
        assert!(layout.mapping.is_complete());
        let mut seen = std::collections::HashSet::new();
        for q in 0..f.num_qubits() as u32 {
            assert!(seen.insert(layout.mapping.position(QubitId::new(q)).unwrap()));
        }
    }

    #[test]
    fn port_reassignment_keeps_factory_invariants() {
        let mut f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let edges_before = f.permutation_edges().len();
        let layout = HierarchicalStitchingMapper::new(5)
            .map_factory_optimized(&mut f)
            .unwrap();
        assert!(layout.mapping.is_complete());
        assert_eq!(f.permutation_edges().len(), edges_before);
        // Every destination module still receives at most one state per source.
        let mut per_dest: std::collections::HashMap<usize, std::collections::HashSet<usize>> =
            Default::default();
        for e in f.permutation_edges() {
            assert!(per_dest
                .entry(e.dest_module)
                .or_default()
                .insert(e.source_module));
        }
    }

    #[test]
    fn artifact_flow_matches_legacy_in_place_flow() {
        // The immutable map_factory + PortAssignment path must reproduce the
        // historical mutating map_factory_optimized flow exactly: same
        // placement, same hop hints, and the same rewired factory.
        for config in [
            FactoryConfig::two_level(2),
            FactoryConfig::two_level(2).with_reuse(ReusePolicy::NoReuse),
            FactoryConfig::two_level(3),
        ] {
            for seed in [1u64, 42] {
                let base = Factory::build(&config).unwrap();
                let mapper = HierarchicalStitchingMapper::new(seed);

                let layout = mapper.map_factory(&base).unwrap();
                let rewired = base.apply_port_assignment(&layout.ports).unwrap();

                let mut legacy_factory = base.clone();
                let legacy_layout = mapper.map_factory_optimized(&mut legacy_factory).unwrap();

                assert_eq!(
                    layout.mapping, legacy_layout.mapping,
                    "{config:?} seed {seed}"
                );
                assert_eq!(layout.hints, legacy_layout.hints, "{config:?} seed {seed}");
                assert_eq!(rewired, legacy_factory, "{config:?} seed {seed}");
            }
        }
    }

    #[test]
    fn map_factory_never_mutates_the_input() {
        let base = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let before = base.clone();
        let layout = HierarchicalStitchingMapper::new(5)
            .map_factory(&base)
            .unwrap();
        assert_eq!(base, before);
        // The rebinding lives on the layout instead.
        assert!(layout.requires_port_rewiring());
    }

    #[test]
    fn stitching_has_fewer_crossings_than_random_on_two_level() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let g = InteractionGraph::from_circuit(f.circuit());
        let stitched = HierarchicalStitchingMapper::new(2).map_factory(&f).unwrap();
        let random = crate::RandomMapper::new(2).map_factory(&f).unwrap();
        let s = metrics::edge_crossings(&g, &stitched.mapping.to_points());
        let r = metrics::edge_crossings(&g, &random.mapping.to_points());
        assert!(
            s < r,
            "stitching ({s}) should cross less than a random placement ({r})"
        );
    }

    #[test]
    fn stitching_intra_round_edges_are_short() {
        // The per-module prototype embedding keeps the braids *within* a
        // module short even when the permutation edges are long.
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let stitched = HierarchicalStitchingMapper::new(2).map_factory(&f).unwrap();
        let round0 = f.round_circuit(0);
        let g0 = InteractionGraph::from_circuit(&round0);
        let avg = metrics::average_edge_length(&g0, &stitched.mapping.to_points());
        assert!(
            avg < 5.0,
            "average intra-round edge length {avg} too long for per-module embeddings"
        );
    }

    #[test]
    fn annealed_midpoint_hops_are_deterministic() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let a = HierarchicalStitchingMapper::new(7).map_factory(&f).unwrap();
        let b = HierarchicalStitchingMapper::new(7).map_factory(&f).unwrap();
        assert_eq!(a.mapping, b.mapping);
        assert_eq!(a.hints, b.hints);
    }
}
