//! Force-directed annealing mapper ("FD" in Table I, Section VI-B1).
//!
//! The mapper iteratively transforms an initial placement (the linear
//! hand-tuned layout by default, as in the paper) by computing three force
//! fields — vertex–vertex attraction towards the neighbourhood centroid,
//! edge–edge repulsion between edge midpoints, and magnetic-dipole rotation —
//! and moving vertices one grid step along their net force. Moves are
//! accepted by a simulated-annealing criterion over a cost combining weighted
//! edge length and edge crossings. Community-structure escape moves
//! (Louvain communities + KMeans cluster re-joining) periodically perturb the
//! placement out of local minima.

use std::cell::RefCell;

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use msfu_circuit::QubitId;
use msfu_distill::Factory;
use msfu_graph::community::CommunityScratch;
use msfu_graph::geometry::Point;
use msfu_graph::kmeans::KMeansScratch;
use msfu_graph::{community, kmeans, InteractionGraph};

use crate::cost::{CostModel, CostScratch, CostWeights};
use crate::dipole::{dipole_forces_into, pole_coloring};
use crate::{Coord, FactoryMapper, Layout, LinearMapper, Mapping, Result};

/// Tuning knobs of the force-directed annealer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ForceDirectedConfig {
    /// Number of annealing sweeps over all vertices.
    pub iterations: usize,
    /// RNG seed (the mapper is deterministic for a fixed seed).
    pub seed: u64,
    /// Strength of the attraction towards the neighbourhood centroid.
    pub attraction: f64,
    /// Strength of the edge–edge midpoint repulsion.
    pub repulsion: f64,
    /// Strength of the magnetic-dipole rotation force (0 disables the
    /// heuristic; used by the ablation bench).
    pub dipole: f64,
    /// Distance beyond which dipole interactions are ignored.
    pub dipole_cutoff: f64,
    /// Maximum number of edge pairs sampled per sweep for the repulsion force.
    pub repulsion_sample: usize,
    /// Whether to apply community-structure escape moves.
    pub use_communities: bool,
    /// Apply community moves every this many sweeps.
    pub community_interval: usize,
    /// Initial annealing temperature.
    pub temperature: f64,
    /// Multiplicative cooling factor per sweep.
    pub cooling: f64,
    /// Cost weights for the accept/reject decision.
    pub weights: CostWeights,
}

impl Default for ForceDirectedConfig {
    fn default() -> Self {
        ForceDirectedConfig {
            iterations: 30,
            seed: 0,
            attraction: 0.5,
            repulsion: 2.0,
            dipole: 1.0,
            dipole_cutoff: 8.0,
            repulsion_sample: 20_000,
            use_communities: true,
            community_interval: 10,
            temperature: 2.0,
            cooling: 0.92,
            weights: CostWeights::default(),
        }
    }
}

/// The force-directed annealing mapper.
#[derive(Debug, Clone)]
pub struct ForceDirectedMapper {
    config: ForceDirectedConfig,
}

impl ForceDirectedMapper {
    /// Creates a mapper with default parameters and the given seed.
    pub fn new(seed: u64) -> Self {
        ForceDirectedMapper {
            config: ForceDirectedConfig {
                seed,
                ..ForceDirectedConfig::default()
            },
        }
    }

    /// Creates a mapper with explicit parameters.
    pub fn with_config(config: ForceDirectedConfig) -> Self {
        ForceDirectedMapper { config }
    }

    /// The configuration in use.
    pub fn config(&self) -> &ForceDirectedConfig {
        &self.config
    }

    /// Refines an existing placement of `graph` by force-directed annealing
    /// and returns the best placement found (by total cost).
    ///
    /// Move candidates are priced by the delta-cost evaluators of
    /// [`CostModel`] — only the edges incident to the moved vertex are
    /// examined, with every other edge rejected against cached bounding boxes
    /// before any segment-intersection test — over scratch buffers reused
    /// across sweeps *and* across refinement calls (thread-local). Results
    /// are byte-identical to the full-recompute
    /// [`reference`](crate::reference) pipeline; see
    /// `tests/refine_equivalence.rs`.
    pub fn refine(&self, graph: &InteractionGraph, initial: &Mapping) -> Result<Mapping> {
        REFINE_SCRATCH.with(|cell| self.refine_with(&mut cell.borrow_mut(), graph, initial))
    }

    fn refine_with(
        &self,
        s: &mut RefineScratch,
        graph: &InteractionGraph,
        initial: &Mapping,
    ) -> Result<Mapping> {
        let cfg = &self.config;
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut mapping = initial.clone();
        let mut positions = mapping.to_points();
        let cost_model = CostModel::new(graph, cfg.weights);
        cost_model.prepare(&mut s.cost, &positions);

        let mut best_mapping = mapping.clone();
        let mut best_cost = cost_model.total_pruned(&s.cost, &positions);

        let poles = if cfg.dipole > 0.0 {
            Some(pole_coloring(graph))
        } else {
            None
        };
        let communities = if cfg.use_communities {
            Some(community::louvain_with(graph, &mut rng, &mut s.community))
        } else {
            None
        };

        let active: Vec<usize> = graph.active_vertices();
        let mut temperature = cfg.temperature;

        for sweep in 0..cfg.iterations {
            self.compute_forces_into(
                graph,
                &positions,
                poles.as_deref(),
                &mut rng,
                &active,
                &mut s.forces,
                &mut s.dipole,
            );

            s.order.clear();
            s.order.extend_from_slice(&active);
            s.order.shuffle(&mut rng);
            for i in 0..s.order.len() {
                let v = s.order[i];
                let force = s.forces[v];
                let step_row = step(force.y);
                let step_col = step(force.x);
                if step_row == 0 && step_col == 0 {
                    continue;
                }
                let current = match mapping.position(QubitId::new(v as u32)) {
                    Some(c) => c,
                    None => continue,
                };
                let target_row = offset(current.row, step_row, mapping.height());
                let target_col = offset(current.col, step_col, mapping.width());
                let target = Coord::new(target_row, target_col);
                if target == current {
                    continue;
                }
                self.try_move(
                    &cost_model,
                    &mut s.cost,
                    &mut mapping,
                    &mut positions,
                    v,
                    target,
                    temperature,
                    &mut rng,
                );
            }

            // Community escape moves.
            if let Some(comms) = &communities {
                if cfg.community_interval > 0 && (sweep + 1) % cfg.community_interval == 0 {
                    self.community_moves(
                        comms,
                        &cost_model,
                        &mut s.cost,
                        &mut s.group_pts,
                        &mut s.sizes,
                        &mut s.kmeans,
                        &mut mapping,
                        &mut positions,
                        temperature * 2.0,
                        &mut rng,
                    );
                }
            }

            // Track the best placement by exact cost.
            let current_cost = cost_model.total_pruned(&s.cost, &positions);
            if current_cost < best_cost {
                best_cost = current_cost;
                best_mapping = mapping.clone();
            }
            temperature *= cfg.cooling;
        }
        Ok(best_mapping)
    }

    /// Computes the combined force field on every vertex into `forces`
    /// (`dipole_buf` is the reusable pair-sum accumulator of the dipole
    /// term).
    #[allow(clippy::too_many_arguments)]
    fn compute_forces_into(
        &self,
        graph: &InteractionGraph,
        positions: &[Point],
        poles: Option<&[crate::dipole::Pole]>,
        rng: &mut ChaCha8Rng,
        active: &[usize],
        forces: &mut Vec<Point>,
        dipole_buf: &mut Vec<Point>,
    ) {
        let cfg = &self.config;
        let n = graph.num_vertices();
        forces.clear();
        forces.resize(n, Point::default());

        // Vertex-vertex attraction towards the neighbourhood centroid.
        if cfg.attraction > 0.0 {
            for v in 0..n {
                let neighbors = graph.neighbors(v);
                if neighbors.is_empty() {
                    continue;
                }
                // Centroid accumulated inline, in neighbor order (the same
                // fold `geometry::centroid` performs on a collected list).
                let mut cx = 0.0;
                let mut cy = 0.0;
                for (u, _) in neighbors {
                    cx += positions[*u].x;
                    cy += positions[*u].y;
                }
                let c = Point::new(cx / neighbors.len() as f64, cy / neighbors.len() as f64);
                forces[v] = forces[v] + (c - positions[v]) * cfg.attraction;
            }
        }

        // Edge-edge midpoint repulsion (sampled pairs).
        if cfg.repulsion > 0.0 {
            let edges = graph.edges();
            let m = edges.len();
            if m >= 2 {
                let total_pairs = m * (m - 1) / 2;
                let samples = cfg.repulsion_sample.min(total_pairs);
                for _ in 0..samples {
                    let i = rng.gen_range(0..m);
                    let mut j = rng.gen_range(0..m);
                    while j == i {
                        j = rng.gen_range(0..m);
                    }
                    let (a, b, _) = edges[i];
                    let (c, d, _) = edges[j];
                    let m1 = positions[a].midpoint(&positions[b]);
                    let m2 = positions[c].midpoint(&positions[d]);
                    let delta = m1 - m2;
                    let dist = (delta.x * delta.x + delta.y * delta.y).sqrt().max(0.5);
                    let magnitude = cfg.repulsion / (dist * dist);
                    let unit = Point::new(delta.x / dist, delta.y / dist);
                    let push = unit * magnitude;
                    forces[a] = forces[a] + push;
                    forces[b] = forces[b] + push;
                    forces[c] = forces[c] - push;
                    forces[d] = forces[d] - push;
                }
            }
        }

        // Magnetic-dipole rotation: pair sums accumulate in the dedicated
        // buffer first (same summation order as the standalone
        // `dipole_forces`), then fold into the force field.
        if let Some(poles) = poles {
            dipole_forces_into(
                graph,
                positions,
                poles,
                cfg.dipole,
                cfg.dipole_cutoff,
                active,
                dipole_buf,
            );
            for v in 0..n {
                forces[v] = forces[v] + dipole_buf[v];
            }
        }
    }

    /// Attempts to move vertex `v` to `target` (relocating into a free cell or
    /// swapping with the occupant), accepting by the annealing criterion.
    /// Deltas come from the pruned evaluators; accepted moves refresh the
    /// scratch bounding boxes of the affected edge stars.
    #[allow(clippy::too_many_arguments)]
    fn try_move(
        &self,
        cost_model: &CostModel<'_>,
        cost_scratch: &mut CostScratch,
        mapping: &mut Mapping,
        positions: &mut [Point],
        v: usize,
        target: Coord,
        temperature: f64,
        rng: &mut ChaCha8Rng,
    ) -> bool {
        let qubit = QubitId::new(v as u32);
        let accept = |delta: f64, rng: &mut ChaCha8Rng| -> bool {
            delta < 0.0 || (temperature > 1e-9 && rng.gen::<f64>() < (-delta / temperature).exp())
        };
        match mapping.occupant(target) {
            None => {
                let delta =
                    cost_model.move_delta_pruned(cost_scratch, v, positions, target.to_point());
                if accept(delta, rng) {
                    mapping
                        .relocate(qubit, target)
                        .expect("target cell verified free and in bounds");
                    positions[v] = target.to_point();
                    cost_model.note_move(cost_scratch, v, positions);
                    true
                } else {
                    false
                }
            }
            Some(other) if other != qubit => {
                let u = other.index();
                let pv = positions[v];
                let pu = positions[u];
                let before = cost_model.vertex_contribution_pruned(cost_scratch, v, positions)
                    + cost_model.vertex_contribution_pruned(cost_scratch, u, positions);
                positions[v] = pu;
                positions[u] = pv;
                // The swapped vertices' edge boxes must track the trial
                // positions: when pricing u's star, v's edges are "other"
                // edges looked up from the scratch.
                cost_model.note_move(cost_scratch, v, positions);
                cost_model.note_move(cost_scratch, u, positions);
                let after = cost_model.vertex_contribution_pruned(cost_scratch, v, positions)
                    + cost_model.vertex_contribution_pruned(cost_scratch, u, positions);
                let delta = after - before;
                if accept(delta, rng) {
                    mapping.swap(qubit, other).expect("both qubits are placed");
                    true
                } else {
                    positions[v] = pv;
                    positions[u] = pu;
                    cost_model.note_move(cost_scratch, v, positions);
                    cost_model.note_move(cost_scratch, u, positions);
                    false
                }
            }
            _ => false,
        }
    }

    /// Community escape moves: for every community whose members have drifted
    /// into several spatial clusters, pull the members of the smaller clusters
    /// one step towards the centroid of the largest cluster.
    #[allow(clippy::too_many_arguments)]
    fn community_moves(
        &self,
        communities: &community::Communities,
        cost_model: &CostModel<'_>,
        cost_scratch: &mut CostScratch,
        group_pts: &mut Vec<Point>,
        sizes: &mut Vec<usize>,
        kmeans_scratch: &mut KMeansScratch,
        mapping: &mut Mapping,
        positions: &mut [Point],
        temperature: f64,
        rng: &mut ChaCha8Rng,
    ) {
        for group in communities.groups() {
            if group.len() < 4 {
                continue;
            }
            group_pts.clear();
            group_pts.extend(group.iter().map(|v| positions[*v]));
            let clustering = kmeans::kmeans_with(group_pts, 2, 20, rng, kmeans_scratch);
            if clustering.num_clusters() < 2 {
                continue;
            }
            sizes.clear();
            sizes.resize(clustering.num_clusters(), 0);
            for a in &clustering.assignment {
                sizes[*a] += 1;
            }
            let largest = sizes
                .iter()
                .enumerate()
                .max_by_key(|(_, s)| **s)
                .map(|(i, _)| i)
                .unwrap_or(0);
            let target_centroid = clustering.centroids[largest];
            for (local, &vertex) in group.iter().enumerate() {
                if clustering.assignment[local] == largest {
                    continue;
                }
                let current = match mapping.position(QubitId::new(vertex as u32)) {
                    Some(c) => c,
                    None => continue,
                };
                let dir = target_centroid - positions[vertex];
                let target = Coord::new(
                    offset(current.row, step(dir.y), mapping.height()),
                    offset(current.col, step(dir.x), mapping.width()),
                );
                if target != current {
                    self.try_move(
                        cost_model,
                        cost_scratch,
                        mapping,
                        positions,
                        vertex,
                        target,
                        temperature,
                        rng,
                    );
                }
            }
        }
    }
}

/// Buffers reused across sweeps and across refinement calls on the same
/// thread: the force fields, the visit order, the pruned cost model's
/// bounding-box state, the Louvain aggregation buffers and the k-means
/// accumulators of the community escape moves.
#[derive(Debug, Default)]
struct RefineScratch {
    cost: CostScratch,
    forces: Vec<Point>,
    dipole: Vec<Point>,
    order: Vec<usize>,
    group_pts: Vec<Point>,
    sizes: Vec<usize>,
    community: CommunityScratch,
    kmeans: KMeansScratch,
}

thread_local! {
    /// One refinement scratch per thread: the registry builds a fresh mapper
    /// per `Strategy::map`, so per-mapper storage would defeat reuse — sweep
    /// and search worker threads instead share these arenas across every
    /// placement they refine.
    static REFINE_SCRATCH: RefCell<RefineScratch> = RefCell::new(RefineScratch::default());
}

/// Sign of a force component as a single grid step.
pub(crate) fn step(component: f64) -> i64 {
    if component > 0.25 {
        1
    } else if component < -0.25 {
        -1
    } else {
        0
    }
}

/// Applies a signed step to a coordinate, clamped to `[0, bound)`.
pub(crate) fn offset(value: usize, step: i64, bound: usize) -> usize {
    let next = value as i64 + step;
    next.clamp(0, bound.saturating_sub(1) as i64) as usize
}

impl FactoryMapper for ForceDirectedMapper {
    fn name(&self) -> &'static str {
        "force-directed"
    }

    fn map_factory(&self, factory: &Factory) -> Result<Layout> {
        // The paper's FD procedure transforms the hand-optimised linear
        // mapping; start from the same baseline.
        let initial = LinearMapper::new().map_factory(factory)?;
        let graph = InteractionGraph::from_circuit(factory.circuit());
        let refined = self.refine(&graph, &initial.mapping)?;
        Ok(Layout::new(refined))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RandomMapper;
    use msfu_distill::FactoryConfig;
    use msfu_graph::metrics;

    fn small_config(seed: u64) -> ForceDirectedConfig {
        ForceDirectedConfig {
            iterations: 8,
            seed,
            repulsion_sample: 500,
            ..ForceDirectedConfig::default()
        }
    }

    #[test]
    fn step_and_offset_helpers() {
        assert_eq!(step(1.0), 1);
        assert_eq!(step(-1.0), -1);
        assert_eq!(step(0.1), 0);
        assert_eq!(offset(0, -1, 5), 0);
        assert_eq!(offset(4, 1, 5), 4);
        assert_eq!(offset(2, 1, 5), 3);
    }

    #[test]
    fn refinement_keeps_mapping_valid() {
        let f = Factory::build(&FactoryConfig::single_level(4)).unwrap();
        let layout = ForceDirectedMapper::with_config(small_config(1))
            .map_factory(&f)
            .unwrap();
        assert!(layout.mapping.is_complete());
        let mut seen = std::collections::HashSet::new();
        for q in 0..f.num_qubits() as u32 {
            assert!(seen.insert(layout.mapping.position(QubitId::new(q)).unwrap()));
        }
    }

    #[test]
    fn refinement_improves_a_random_start() {
        let f = Factory::build(&FactoryConfig::single_level(4)).unwrap();
        let graph = InteractionGraph::from_circuit(f.circuit());
        let random = RandomMapper::new(3).map_factory(&f).unwrap().mapping;
        let mapper = ForceDirectedMapper::with_config(ForceDirectedConfig {
            iterations: 20,
            seed: 3,
            repulsion_sample: 1000,
            ..ForceDirectedConfig::default()
        });
        let refined = mapper.refine(&graph, &random).unwrap();
        let model = CostModel::new(&graph, CostWeights::default());
        let before = model.total(&random.to_points());
        let after = model.total(&refined.to_points());
        assert!(
            after <= before,
            "refinement must not worsen the cost (before {before}, after {after})"
        );
    }

    #[test]
    fn refinement_does_not_worsen_the_linear_start() {
        let f = Factory::build(&FactoryConfig::single_level(6)).unwrap();
        let graph = InteractionGraph::from_circuit(f.circuit());
        let linear = LinearMapper::new().map_factory(&f).unwrap().mapping;
        let refined = ForceDirectedMapper::with_config(small_config(5))
            .refine(&graph, &linear)
            .unwrap();
        let model = CostModel::new(&graph, CostWeights::default());
        assert!(model.total(&refined.to_points()) <= model.total(&linear.to_points()));
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let f = Factory::build(&FactoryConfig::single_level(2)).unwrap();
        let a = ForceDirectedMapper::with_config(small_config(9))
            .map_factory(&f)
            .unwrap();
        let b = ForceDirectedMapper::with_config(small_config(9))
            .map_factory(&f)
            .unwrap();
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn disabling_dipole_still_works() {
        let f = Factory::build(&FactoryConfig::single_level(2)).unwrap();
        let cfg = ForceDirectedConfig {
            dipole: 0.0,
            ..small_config(2)
        };
        let layout = ForceDirectedMapper::with_config(cfg)
            .map_factory(&f)
            .unwrap();
        assert!(layout.mapping.is_complete());
    }

    #[test]
    fn fd_beats_random_on_crossings() {
        let f = Factory::build(&FactoryConfig::single_level(8)).unwrap();
        let graph = InteractionGraph::from_circuit(f.circuit());
        let random = RandomMapper::new(11).map_factory(&f).unwrap().mapping;
        let refined = ForceDirectedMapper::with_config(ForceDirectedConfig {
            iterations: 15,
            seed: 11,
            repulsion_sample: 1000,
            ..ForceDirectedConfig::default()
        })
        .refine(&graph, &random)
        .unwrap();
        let before = metrics::edge_crossings(&graph, &random.to_points());
        let after = metrics::edge_crossings(&graph, &refined.to_points());
        assert!(
            after <= before,
            "crossings should not increase (before {before}, after {after})"
        );
    }
}
