//! Graph-partitioning grid embedding (Section VI-B2 of the paper).
//!
//! The interaction graph is recursively bisected (multilevel heavy-edge
//! matching + boundary refinement, see [`msfu_graph::partition`]) and every
//! graph bisection is matched by a bisection of the target cell set: the
//! cells are ordered along the longer dimension of their bounding box and
//! split proportionally to the two vertex-set sizes. Recursion bottoms out on
//! small vertex sets, which are placed directly into their cells.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use msfu_circuit::QubitId;
use msfu_distill::Factory;
use msfu_graph::{partition, InteractionGraph};

use crate::{Coord, FactoryMapper, Layout, LayoutError, Mapping, Result};

/// Generates the row-major cell list of a rectangle rows `[row0, row1)` ×
/// cols `[col0, col1)`.
pub(crate) fn rectangle_cells(row0: usize, row1: usize, col0: usize, col1: usize) -> Vec<Coord> {
    let mut cells = Vec::with_capacity((row1 - row0) * (col1 - col0));
    for r in row0..row1 {
        for c in col0..col1 {
            cells.push(Coord::new(r, c));
        }
    }
    cells
}

/// Recursively embeds `vertices` of `graph` into `cells` (which must hold at
/// least as many cells as vertices), returning the cell assigned to each
/// vertex. Each graph bisection is matched by a geometric bisection of the
/// cell set along the longer dimension of its bounding box.
pub(crate) fn embed_into_cells(
    graph: &InteractionGraph,
    vertices: &[usize],
    mut cells: Vec<Coord>,
    rng: &mut ChaCha8Rng,
) -> Vec<(usize, Coord)> {
    debug_assert!(cells.len() >= vertices.len());
    if vertices.len() <= 4 {
        return vertices.iter().copied().zip(cells).collect();
    }

    let (sub, back) = graph.induced_subgraph(vertices);
    let bisection = partition::bisect(&sub, rng);
    let left: Vec<usize> = bisection.left.iter().map(|v| back[*v]).collect();
    let right: Vec<usize> = bisection.right.iter().map(|v| back[*v]).collect();
    if left.is_empty() || right.is_empty() {
        // Bisection failed to split (e.g. a fully disconnected tiny graph);
        // fall back to direct placement.
        return vertices.iter().copied().zip(cells).collect();
    }

    // Order the cells along the longer dimension of their bounding box so the
    // split corresponds to a geometric cut.
    let min_row = cells.iter().map(|c| c.row).min().unwrap_or(0);
    let max_row = cells.iter().map(|c| c.row).max().unwrap_or(0);
    let min_col = cells.iter().map(|c| c.col).min().unwrap_or(0);
    let max_col = cells.iter().map(|c| c.col).max().unwrap_or(0);
    if max_col - min_col >= max_row - min_row {
        cells.sort_by_key(|c| (c.col, c.row));
    } else {
        cells.sort_by_key(|c| (c.row, c.col));
    }

    // Give each side a share of cells proportional to its vertex count, but
    // never fewer cells than vertices on either side.
    let total = cells.len();
    let mut left_cells =
        (total as f64 * left.len() as f64 / vertices.len() as f64).round() as usize;
    left_cells = left_cells.max(left.len()).min(total - right.len());
    let right_cell_list = cells.split_off(left_cells);
    let left_cell_list = cells;

    let mut out = embed_into_cells(graph, &left, left_cell_list, rng);
    out.extend(embed_into_cells(graph, &right, right_cell_list, rng));
    out
}

/// The graph-partitioning mapper ("GP" in Table I).
#[derive(Debug, Clone)]
pub struct GraphPartitionMapper {
    seed: u64,
    expansion: f64,
}

impl GraphPartitionMapper {
    /// Creates a mapper with the given RNG seed and a compact grid
    /// (expansion factor 1.0).
    pub fn new(seed: u64) -> Self {
        GraphPartitionMapper {
            seed,
            expansion: 1.0,
        }
    }

    /// Sets the grid expansion factor (≥ 1.0): how many grid cells to
    /// provision per qubit.
    pub fn with_expansion(mut self, expansion: f64) -> Self {
        self.expansion = expansion.max(1.0);
        self
    }

    /// Embeds an arbitrary interaction graph into a compact square grid.
    ///
    /// # Errors
    ///
    /// Returns an error when the graph has no vertices.
    pub fn map_graph(&self, graph: &InteractionGraph) -> Result<Mapping> {
        let n = graph.num_vertices();
        if n == 0 {
            return Err(LayoutError::UnsupportedFactory {
                reason: "no qubits to place".into(),
            });
        }
        let side = ((n as f64 * self.expansion).sqrt().ceil() as usize).max(1);
        let cells = rectangle_cells(0, side, 0, side);
        if cells.len() < n {
            return Err(LayoutError::GridTooSmall {
                qubits: n,
                cells: cells.len(),
            });
        }
        let mut mapping = Mapping::new(n, side, side);
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let vertices: Vec<usize> = (0..n).collect();
        for (v, cell) in embed_into_cells(graph, &vertices, cells, &mut rng) {
            mapping.place(QubitId::new(v as u32), cell)?;
        }
        Ok(mapping)
    }
}

impl FactoryMapper for GraphPartitionMapper {
    fn name(&self) -> &'static str {
        "graph-partition"
    }

    fn map_factory(&self, factory: &Factory) -> Result<Layout> {
        let graph = InteractionGraph::from_circuit(factory.circuit());
        Ok(Layout::new(self.map_graph(&graph)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LinearMapper, RandomMapper};
    use msfu_distill::FactoryConfig;
    use msfu_graph::metrics;

    #[test]
    fn rectangle_cells_cover_the_rectangle() {
        let cells = rectangle_cells(1, 3, 2, 5);
        assert_eq!(cells.len(), 6);
        assert!(cells.contains(&Coord::new(1, 2)));
        assert!(cells.contains(&Coord::new(2, 4)));
    }

    #[test]
    fn embedding_is_complete_and_collision_free() {
        let f = Factory::build(&FactoryConfig::single_level(8)).unwrap();
        let layout = GraphPartitionMapper::new(3).map_factory(&f).unwrap();
        assert!(layout.mapping.is_complete());
        let mut seen = std::collections::HashSet::new();
        for q in 0..f.num_qubits() as u32 {
            assert!(seen.insert(layout.mapping.position(QubitId::new(q)).unwrap()));
        }
    }

    #[test]
    fn two_level_embedding_is_complete() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let layout = GraphPartitionMapper::new(5).map_factory(&f).unwrap();
        assert!(layout.mapping.is_complete());
    }

    #[test]
    fn gp_beats_random_on_edge_length() {
        let f = Factory::build(&FactoryConfig::single_level(8)).unwrap();
        let g = InteractionGraph::from_circuit(f.circuit());
        let gp = GraphPartitionMapper::new(3).map_factory(&f).unwrap();
        let random = RandomMapper::new(3).map_factory(&f).unwrap();
        let gp_len = metrics::average_edge_length(&g, &gp.mapping.to_points());
        let rand_len = metrics::average_edge_length(&g, &random.mapping.to_points());
        assert!(
            gp_len < rand_len,
            "graph partitioning ({gp_len:.2}) should beat random ({rand_len:.2})"
        );
    }

    #[test]
    fn gp_beats_random_on_crossings_for_two_level() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let g = InteractionGraph::from_circuit(f.circuit());
        let gp = GraphPartitionMapper::new(1).map_factory(&f).unwrap();
        let random = RandomMapper::new(1).map_factory(&f).unwrap();
        let gp_cross = metrics::edge_crossings(&g, &gp.mapping.to_points());
        let rand_cross = metrics::edge_crossings(&g, &random.mapping.to_points());
        assert!(
            gp_cross < rand_cross,
            "graph partitioning ({gp_cross}) should cross less than random ({rand_cross})"
        );
    }

    #[test]
    fn gp_is_compact_relative_to_linear() {
        let f = Factory::build(&FactoryConfig::single_level(8)).unwrap();
        let gp = GraphPartitionMapper::new(1).map_factory(&f).unwrap();
        let linear = LinearMapper::new().map_factory(&f).unwrap();
        assert!(gp.mapping.used_area() <= linear.mapping.used_area());
    }

    #[test]
    fn expansion_factor_enlarges_grid() {
        let f = Factory::build(&FactoryConfig::single_level(4)).unwrap();
        let compact = GraphPartitionMapper::new(1).map_factory(&f).unwrap();
        let sparse = GraphPartitionMapper::new(1)
            .with_expansion(1.8)
            .map_factory(&f)
            .unwrap();
        assert!(sparse.mapping.grid_area() > compact.mapping.grid_area());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let f = Factory::build(&FactoryConfig::single_level(4)).unwrap();
        let a = GraphPartitionMapper::new(9).map_factory(&f).unwrap();
        let b = GraphPartitionMapper::new(9).map_factory(&f).unwrap();
        assert_eq!(a.mapping, b.mapping);
    }

    #[test]
    fn tight_cell_budget_still_places_everything() {
        // Exactly as many cells as vertices.
        let f = Factory::build(&FactoryConfig::single_level(2)).unwrap();
        let g = InteractionGraph::from_circuit(f.circuit());
        let n = g.num_vertices();
        let mapping = GraphPartitionMapper::new(7).map_graph(&g).unwrap();
        assert_eq!(mapping.occupied_count(), n);
    }
}
