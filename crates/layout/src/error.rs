//! Error types for mapping construction.

use std::fmt;

use msfu_circuit::QubitId;

use crate::Coord;

/// Errors produced while constructing or manipulating qubit mappings.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LayoutError {
    /// Two qubits were assigned to the same grid cell.
    CellOccupied {
        /// The contested cell.
        cell: Coord,
        /// The qubit already occupying it.
        occupant: QubitId,
        /// The qubit that attempted to claim it.
        claimant: QubitId,
    },
    /// A qubit was placed outside the grid bounds.
    OutOfBounds {
        /// The offending cell.
        cell: Coord,
        /// Grid width.
        width: usize,
        /// Grid height.
        height: usize,
    },
    /// The grid is too small to hold all qubits of the circuit.
    GridTooSmall {
        /// Number of qubits that need placement.
        qubits: usize,
        /// Number of available cells.
        cells: usize,
    },
    /// A mapper that requires factory structure was given a factory whose
    /// structure it cannot handle (e.g. stitching on a single-level factory
    /// is redundant but allowed; an empty factory is not).
    UnsupportedFactory {
        /// Explanation of the problem.
        reason: String,
    },
    /// A qubit required by a consumer (e.g. the simulator) has no assigned
    /// position.
    Unmapped {
        /// The unmapped qubit.
        qubit: QubitId,
    },
    /// A registry lookup used a name no strategy is registered under.
    UnknownMapper {
        /// The requested name.
        name: String,
        /// The names that are registered, sorted.
        known: Vec<String>,
    },
    /// A strategy was registered under a name that is already taken.
    DuplicateMapper {
        /// The contested name.
        name: String,
    },
    /// A mapper builder rejected its parameter bag (unknown key, type
    /// mismatch, or out-of-range value).
    InvalidMapperParam {
        /// The mapper whose builder rejected the parameters.
        mapper: String,
        /// Explanation of the problem.
        reason: String,
    },
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::CellOccupied {
                cell,
                occupant,
                claimant,
            } => write!(
                f,
                "cell ({}, {}) already holds {occupant}, cannot also place {claimant}",
                cell.row, cell.col
            ),
            LayoutError::OutOfBounds {
                cell,
                width,
                height,
            } => write!(
                f,
                "cell ({}, {}) lies outside the {width}x{height} grid",
                cell.row, cell.col
            ),
            LayoutError::GridTooSmall { qubits, cells } => {
                write!(f, "grid with {cells} cells cannot hold {qubits} qubits")
            }
            LayoutError::UnsupportedFactory { reason } => {
                write!(f, "factory not supported by this mapper: {reason}")
            }
            LayoutError::Unmapped { qubit } => write!(f, "qubit {qubit} has no assigned position"),
            LayoutError::UnknownMapper { name, known } => write!(
                f,
                "no mapping strategy registered under `{name}` (registered: {})",
                known.join(", ")
            ),
            LayoutError::DuplicateMapper { name } => {
                write!(f, "a mapping strategy is already registered under `{name}`")
            }
            LayoutError::InvalidMapperParam { mapper, reason } => {
                write!(f, "invalid parameters for mapper `{mapper}`: {reason}")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = LayoutError::CellOccupied {
            cell: Coord::new(1, 2),
            occupant: QubitId::new(0),
            claimant: QubitId::new(3),
        };
        assert!(e.to_string().contains("q0"));
        assert!(e.to_string().contains("q3"));

        let e = LayoutError::GridTooSmall {
            qubits: 9,
            cells: 4,
        };
        assert!(e.to_string().contains('9'));

        let e = LayoutError::Unmapped {
            qubit: QubitId::new(7),
        };
        assert!(e.to_string().contains("q7"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<LayoutError>();
    }
}
