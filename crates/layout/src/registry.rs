//! The open, name-keyed mapper registry.
//!
//! The paper evaluates a fixed line-up of five placement strategies, but
//! nothing about the pipeline requires the line-up to be closed: any type
//! implementing [`FactoryMapper`] can be simulated and swept. This module
//! provides the extension point — a [`MapperRegistry`] that resolves a
//! `(name, params)` pair into a boxed mapper, with the five paper strategies
//! pre-registered as built-ins:
//!
//! | key                        | mapper                              | params |
//! |----------------------------|-------------------------------------|--------|
//! | `random`                   | [`RandomMapper`]                    | `seed`, `expansion` |
//! | `linear`                   | [`LinearMapper`]                    | — |
//! | `force_directed`           | [`ForceDirectedMapper`]             | `seed`, `iterations`, `attraction`, `repulsion`, `dipole`, `dipole_cutoff`, `repulsion_sample`, `use_communities`, `community_interval`, `temperature`, `cooling`, `weight_edge_length`, `weight_crossing` |
//! | `graph_partition`          | [`GraphPartitionMapper`]            | `seed` |
//! | `hierarchical_stitching`   | [`HierarchicalStitchingMapper`]     | `seed`, `hop_strategy`, `reassign_ports`, `hop_anneal_passes`, `block_gap` |
//!
//! Parameters travel as a [`MapperParams`] bag of typed values, which is what
//! makes strategies declarable as *data* (e.g. a JSON sweep spec) rather than
//! code. Builders are strict: an unknown parameter key or a type mismatch is
//! an error, not a silent default, so a typo in a spec file cannot quietly
//! change an experiment.
//!
//! # Example
//!
//! ```
//! use msfu_distill::{Factory, FactoryConfig};
//! use msfu_layout::{MapperParams, MapperRegistry};
//!
//! let registry = MapperRegistry::with_builtins();
//! let params = MapperParams::new().with_u64("seed", 7);
//! let mapper = registry.build("random", &params).unwrap();
//! let factory = Factory::build(&FactoryConfig::single_level(2)).unwrap();
//! assert!(mapper.map_factory(&factory).unwrap().mapping.is_complete());
//! ```

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use serde::{Serialize, Value};

use crate::{
    FactoryMapper, ForceDirectedConfig, ForceDirectedMapper, GraphPartitionMapper,
    HierarchicalStitchingMapper, HopStrategy, LayoutError, LinearMapper, RandomMapper, Result,
    StitchingConfig,
};

/// A single typed mapper parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Unsigned integer (seeds, iteration counts, sample sizes).
    U64(u64),
    /// Floating point (force strengths, temperatures, expansion factors).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// String (e.g. a hop-strategy name).
    Str(String),
}

impl fmt::Display for ParamValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParamValue::U64(v) => write!(f, "{v}"),
            ParamValue::F64(v) => write!(f, "{v}"),
            ParamValue::Bool(v) => write!(f, "{v}"),
            ParamValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl Serialize for ParamValue {
    fn to_value(&self) -> Value {
        match self {
            ParamValue::U64(v) => Value::UInt(*v),
            ParamValue::F64(v) => Value::Float(*v),
            ParamValue::Bool(v) => Value::Bool(*v),
            ParamValue::Str(v) => Value::Str(v.clone()),
        }
    }
}

/// An ordered bag of named, typed mapper parameters.
///
/// Keys are kept sorted so two parameter sets constructed in different orders
/// compare (and serialize) identically. The canonical form is *sparse*:
/// conversions from the concrete config structs only record values that
/// differ from that config's defaults, so a params bag written by hand, read
/// from JSON, or produced by [`MapperParams::from`] a config all agree.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MapperParams(BTreeMap<String, ParamValue>);

impl MapperParams {
    /// Creates an empty parameter bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets a raw parameter value (builder style).
    pub fn with(mut self, key: impl Into<String>, value: ParamValue) -> Self {
        self.0.insert(key.into(), value);
        self
    }

    /// Sets an unsigned-integer parameter (builder style).
    pub fn with_u64(self, key: impl Into<String>, value: u64) -> Self {
        self.with(key, ParamValue::U64(value))
    }

    /// Sets a floating-point parameter (builder style).
    pub fn with_f64(self, key: impl Into<String>, value: f64) -> Self {
        self.with(key, ParamValue::F64(value))
    }

    /// Sets a boolean parameter (builder style).
    pub fn with_bool(self, key: impl Into<String>, value: bool) -> Self {
        self.with(key, ParamValue::Bool(value))
    }

    /// Sets a string parameter (builder style).
    pub fn with_str(self, key: impl Into<String>, value: impl Into<String>) -> Self {
        self.with(key, ParamValue::Str(value.into()))
    }

    /// Inserts a parameter value in place, returning the previous value.
    pub fn set(&mut self, key: impl Into<String>, value: ParamValue) -> Option<ParamValue> {
        self.0.insert(key.into(), value)
    }

    /// The raw value under `key`.
    pub fn get(&self, key: &str) -> Option<&ParamValue> {
        self.0.get(key)
    }

    /// Whether the bag holds no parameters.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Iterates over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.0.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl Serialize for MapperParams {
    fn to_value(&self) -> Value {
        Value::Object(
            self.0
                .iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

/// Sparse canonical parameters of a [`ForceDirectedConfig`]: only values that
/// differ from [`ForceDirectedConfig::default`] are recorded.
impl From<ForceDirectedConfig> for MapperParams {
    fn from(cfg: ForceDirectedConfig) -> Self {
        let d = ForceDirectedConfig::default();
        let mut p = MapperParams::new();
        if cfg.seed != d.seed {
            p.set("seed", ParamValue::U64(cfg.seed));
        }
        if cfg.iterations != d.iterations {
            p.set("iterations", ParamValue::U64(cfg.iterations as u64));
        }
        if cfg.attraction != d.attraction {
            p.set("attraction", ParamValue::F64(cfg.attraction));
        }
        if cfg.repulsion != d.repulsion {
            p.set("repulsion", ParamValue::F64(cfg.repulsion));
        }
        if cfg.dipole != d.dipole {
            p.set("dipole", ParamValue::F64(cfg.dipole));
        }
        if cfg.dipole_cutoff != d.dipole_cutoff {
            p.set("dipole_cutoff", ParamValue::F64(cfg.dipole_cutoff));
        }
        if cfg.repulsion_sample != d.repulsion_sample {
            p.set(
                "repulsion_sample",
                ParamValue::U64(cfg.repulsion_sample as u64),
            );
        }
        if cfg.use_communities != d.use_communities {
            p.set("use_communities", ParamValue::Bool(cfg.use_communities));
        }
        if cfg.community_interval != d.community_interval {
            p.set(
                "community_interval",
                ParamValue::U64(cfg.community_interval as u64),
            );
        }
        if cfg.temperature != d.temperature {
            p.set("temperature", ParamValue::F64(cfg.temperature));
        }
        if cfg.cooling != d.cooling {
            p.set("cooling", ParamValue::F64(cfg.cooling));
        }
        if cfg.weights.edge_length != d.weights.edge_length {
            p.set(
                "weight_edge_length",
                ParamValue::F64(cfg.weights.edge_length),
            );
        }
        if cfg.weights.crossing != d.weights.crossing {
            p.set("weight_crossing", ParamValue::F64(cfg.weights.crossing));
        }
        p
    }
}

/// Sparse canonical parameters of a [`StitchingConfig`]: only values that
/// differ from [`StitchingConfig::default`] are recorded.
impl From<StitchingConfig> for MapperParams {
    fn from(cfg: StitchingConfig) -> Self {
        let d = StitchingConfig::default();
        let mut p = MapperParams::new();
        if cfg.seed != d.seed {
            p.set("seed", ParamValue::U64(cfg.seed));
        }
        if cfg.hop_strategy != d.hop_strategy {
            p.set(
                "hop_strategy",
                ParamValue::Str(cfg.hop_strategy.name().to_string()),
            );
        }
        if cfg.reassign_ports != d.reassign_ports {
            p.set("reassign_ports", ParamValue::Bool(cfg.reassign_ports));
        }
        if cfg.hop_anneal_passes != d.hop_anneal_passes {
            p.set(
                "hop_anneal_passes",
                ParamValue::U64(cfg.hop_anneal_passes as u64),
            );
        }
        if cfg.block_gap != d.block_gap {
            p.set("block_gap", ParamValue::U64(cfg.block_gap as u64));
        }
        p
    }
}

/// Strict reader over a [`MapperParams`] bag: typed accessors with defaults,
/// plus detection of unknown keys so a misspelled parameter is an error.
pub struct ParamReader<'a> {
    mapper: &'a str,
    params: &'a MapperParams,
    consumed: BTreeSet<&'a str>,
}

impl<'a> ParamReader<'a> {
    /// Starts reading `params` on behalf of mapper `mapper` (used in errors).
    pub fn new(mapper: &'a str, params: &'a MapperParams) -> Self {
        ParamReader {
            mapper,
            params,
            consumed: BTreeSet::new(),
        }
    }

    fn mismatch(&self, key: &str, want: &str, got: &ParamValue) -> LayoutError {
        LayoutError::InvalidMapperParam {
            mapper: self.mapper.to_string(),
            reason: format!("parameter `{key}` must be {want}, got `{got}`"),
        }
    }

    fn take(&mut self, key: &'a str) -> Option<&'a ParamValue> {
        let v = self.params.get(key);
        if v.is_some() {
            self.consumed.insert(key);
        }
        v
    }

    /// Reads an unsigned integer, falling back to `default` when absent.
    pub fn u64_or(&mut self, key: &'a str, default: u64) -> Result<u64> {
        match self.take(key) {
            None => Ok(default),
            Some(ParamValue::U64(v)) => Ok(*v),
            Some(other) => Err(self.mismatch(key, "an unsigned integer", other)),
        }
    }

    /// Reads a `usize`, falling back to `default` when absent.
    pub fn usize_or(&mut self, key: &'a str, default: usize) -> Result<usize> {
        Ok(self.u64_or(key, default as u64)? as usize)
    }

    /// Reads a float (integers are accepted and widened), falling back to
    /// `default` when absent.
    pub fn f64_or(&mut self, key: &'a str, default: f64) -> Result<f64> {
        match self.take(key) {
            None => Ok(default),
            Some(ParamValue::F64(v)) => Ok(*v),
            Some(ParamValue::U64(v)) => Ok(*v as f64),
            Some(other) => Err(self.mismatch(key, "a number", other)),
        }
    }

    /// Reads a boolean, falling back to `default` when absent.
    pub fn bool_or(&mut self, key: &'a str, default: bool) -> Result<bool> {
        match self.take(key) {
            None => Ok(default),
            Some(ParamValue::Bool(v)) => Ok(*v),
            Some(other) => Err(self.mismatch(key, "a boolean", other)),
        }
    }

    /// Reads a string, falling back to `default` when absent.
    pub fn str_or(&mut self, key: &'a str, default: &str) -> Result<String> {
        match self.take(key) {
            None => Ok(default.to_string()),
            Some(ParamValue::Str(v)) => Ok(v.clone()),
            Some(other) => Err(self.mismatch(key, "a string", other)),
        }
    }

    /// Finishes reading: any parameter key never consumed by an accessor is
    /// an [`LayoutError::InvalidMapperParam`] (strict by design — a spec typo
    /// must not silently fall back to a default).
    pub fn finish(self) -> Result<()> {
        let unknown: Vec<&str> = self
            .params
            .iter()
            .map(|(k, _)| k)
            .filter(|k| !self.consumed.contains(k))
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(LayoutError::InvalidMapperParam {
                mapper: self.mapper.to_string(),
                reason: format!("unknown parameter(s): {}", unknown.join(", ")),
            })
        }
    }
}

/// Reads a full [`ForceDirectedConfig`] out of a parameter bag (defaults from
/// [`ForceDirectedConfig::default`]); the exact inverse of the
/// `From<ForceDirectedConfig>` conversion.
pub fn force_directed_config_from_params(params: &MapperParams) -> Result<ForceDirectedConfig> {
    let d = ForceDirectedConfig::default();
    let mut r = ParamReader::new("force_directed", params);
    let cfg = ForceDirectedConfig {
        seed: r.u64_or("seed", d.seed)?,
        iterations: r.usize_or("iterations", d.iterations)?,
        attraction: r.f64_or("attraction", d.attraction)?,
        repulsion: r.f64_or("repulsion", d.repulsion)?,
        dipole: r.f64_or("dipole", d.dipole)?,
        dipole_cutoff: r.f64_or("dipole_cutoff", d.dipole_cutoff)?,
        repulsion_sample: r.usize_or("repulsion_sample", d.repulsion_sample)?,
        use_communities: r.bool_or("use_communities", d.use_communities)?,
        community_interval: r.usize_or("community_interval", d.community_interval)?,
        temperature: r.f64_or("temperature", d.temperature)?,
        cooling: r.f64_or("cooling", d.cooling)?,
        weights: crate::cost::CostWeights {
            edge_length: r.f64_or("weight_edge_length", d.weights.edge_length)?,
            crossing: r.f64_or("weight_crossing", d.weights.crossing)?,
        },
    };
    r.finish()?;
    Ok(cfg)
}

/// Reads a full [`StitchingConfig`] out of a parameter bag (defaults from
/// [`StitchingConfig::default`]); the exact inverse of the
/// `From<StitchingConfig>` conversion.
pub fn stitching_config_from_params(params: &MapperParams) -> Result<StitchingConfig> {
    let d = StitchingConfig::default();
    let mut r = ParamReader::new("hierarchical_stitching", params);
    let hop_name = r.str_or("hop_strategy", d.hop_strategy.name())?;
    let hop_strategy =
        HopStrategy::from_name(&hop_name).ok_or_else(|| LayoutError::InvalidMapperParam {
            mapper: "hierarchical_stitching".to_string(),
            reason: format!(
                "unknown hop_strategy `{hop_name}` (expected one of: no-hop, random-hop, \
                 annealed-random-hop, annealed-midpoint-hop)"
            ),
        })?;
    let cfg = StitchingConfig {
        seed: r.u64_or("seed", d.seed)?,
        hop_strategy,
        reassign_ports: r.bool_or("reassign_ports", d.reassign_ports)?,
        hop_anneal_passes: r.usize_or("hop_anneal_passes", d.hop_anneal_passes)?,
        block_gap: r.usize_or("block_gap", d.block_gap)?,
    };
    r.finish()?;
    Ok(cfg)
}

/// A function that instantiates a mapper from a parameter bag.
pub type MapperBuilder = dyn Fn(&MapperParams) -> Result<Box<dyn FactoryMapper>> + Send + Sync;

/// An open, name-keyed registry of placement strategies.
///
/// Every entry maps a canonical name to a [`MapperBuilder`]; resolving a
/// `(name, params)` pair yields a fresh boxed [`FactoryMapper`]. Names are
/// unique — registering the same name twice is an error, and looking up an
/// unknown name reports the names that *are* registered.
///
/// Builders are reference-counted: [`MapperRegistry::resolve`] hands out a
/// shared handle to the builder itself, so hot loops (e.g. a portfolio
/// search expanding one entry into many seeded candidates) look a name up
/// once and instantiate mappers without re-entering the registry.
pub struct MapperRegistry {
    builders: BTreeMap<String, std::sync::Arc<MapperBuilder>>,
}

impl fmt::Debug for MapperRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MapperRegistry")
            .field("names", &self.names())
            .finish()
    }
}

impl Default for MapperRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

impl MapperRegistry {
    /// Creates a registry with no entries.
    pub fn empty() -> Self {
        MapperRegistry {
            builders: BTreeMap::new(),
        }
    }

    /// Creates a registry pre-populated with the five paper strategies
    /// (`random`, `linear`, `force_directed`, `graph_partition`,
    /// `hierarchical_stitching`).
    pub fn with_builtins() -> Self {
        let mut registry = Self::empty();
        registry
            .register("random", |params: &MapperParams| {
                let mut r = ParamReader::new("random", params);
                let seed = r.u64_or("seed", 0)?;
                let expansion = r.f64_or("expansion", 1.0)?;
                r.finish()?;
                Ok(Box::new(RandomMapper::new(seed).with_expansion(expansion))
                    as Box<dyn FactoryMapper>)
            })
            .expect("builtin names are distinct");
        registry
            .register("linear", |params: &MapperParams| {
                ParamReader::new("linear", params).finish()?;
                Ok(Box::new(LinearMapper::new()) as Box<dyn FactoryMapper>)
            })
            .expect("builtin names are distinct");
        registry
            .register("force_directed", |params: &MapperParams| {
                let cfg = force_directed_config_from_params(params)?;
                Ok(Box::new(ForceDirectedMapper::with_config(cfg)) as Box<dyn FactoryMapper>)
            })
            .expect("builtin names are distinct");
        registry
            .register("graph_partition", |params: &MapperParams| {
                let mut r = ParamReader::new("graph_partition", params);
                let seed = r.u64_or("seed", 0)?;
                r.finish()?;
                Ok(Box::new(GraphPartitionMapper::new(seed)) as Box<dyn FactoryMapper>)
            })
            .expect("builtin names are distinct");
        registry
            .register("hierarchical_stitching", |params: &MapperParams| {
                let cfg = stitching_config_from_params(params)?;
                Ok(Box::new(HierarchicalStitchingMapper::with_config(cfg))
                    as Box<dyn FactoryMapper>)
            })
            .expect("builtin names are distinct");
        registry
    }

    /// Registers a strategy under `name`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::DuplicateMapper`] if `name` is already taken —
    /// silently replacing a strategy would let two sweeps disagree about what
    /// a name means.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        builder: impl Fn(&MapperParams) -> Result<Box<dyn FactoryMapper>> + Send + Sync + 'static,
    ) -> Result<()> {
        let name = name.into();
        if self.builders.contains_key(&name) {
            return Err(LayoutError::DuplicateMapper { name });
        }
        self.builders.insert(name, std::sync::Arc::new(builder));
        Ok(())
    }

    /// Whether `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.builders.contains_key(name)
    }

    /// The registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.builders.keys().cloned().collect()
    }

    /// Instantiates the mapper registered under `name` with `params`.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::UnknownMapper`] for an unregistered name (the
    /// error lists the registered names), and propagates parameter errors
    /// from the builder.
    pub fn build(&self, name: &str, params: &MapperParams) -> Result<Box<dyn FactoryMapper>> {
        self.resolve(name)?(params)
    }

    /// Resolves `name` to a shared handle on its builder, so callers that
    /// instantiate many parameterisations of one strategy (seed scans,
    /// parameter ladders) pay the lookup — and any registry lock around it —
    /// once.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::UnknownMapper`] for an unregistered name (the
    /// error lists the registered names).
    pub fn resolve(&self, name: &str) -> Result<std::sync::Arc<MapperBuilder>> {
        self.builders
            .get(name)
            .cloned()
            .ok_or_else(|| LayoutError::UnknownMapper {
                name: name.to_string(),
                known: self.names(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Layout;
    use msfu_distill::{Factory, FactoryConfig};

    // The registry stores strategies as trait objects; this fails to compile
    // if `FactoryMapper` ever loses object safety.
    const _: Option<&dyn FactoryMapper> = None;

    fn factory() -> Factory {
        Factory::build(&FactoryConfig::single_level(2)).unwrap()
    }

    #[test]
    fn builtins_are_registered_and_build() {
        let registry = MapperRegistry::with_builtins();
        assert_eq!(
            registry.names(),
            vec![
                "force_directed",
                "graph_partition",
                "hierarchical_stitching",
                "linear",
                "random",
            ]
        );
        let f = factory();
        for name in ["random", "linear", "graph_partition"] {
            let mapper = registry.build(name, &MapperParams::new()).unwrap();
            assert!(
                mapper.map_factory(&f).unwrap().mapping.is_complete(),
                "{name}"
            );
        }
    }

    #[test]
    fn unknown_name_lists_known_names() {
        let registry = MapperRegistry::with_builtins();
        let err = registry
            .build("does_not_exist", &MapperParams::new())
            .err()
            .expect("lookup fails");
        match &err {
            LayoutError::UnknownMapper { name, known } => {
                assert_eq!(name, "does_not_exist");
                assert!(known.contains(&"linear".to_string()));
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert!(err.to_string().contains("linear"));
    }

    #[test]
    fn duplicate_registration_is_an_error() {
        let mut registry = MapperRegistry::with_builtins();
        let err = registry
            .register("linear", |p| {
                ParamReader::new("linear", p).finish()?;
                Ok(Box::new(LinearMapper::new()) as Box<dyn FactoryMapper>)
            })
            .unwrap_err();
        assert_eq!(
            err,
            LayoutError::DuplicateMapper {
                name: "linear".to_string()
            }
        );
    }

    #[test]
    fn custom_strategies_can_be_registered() {
        struct Reversed;
        impl FactoryMapper for Reversed {
            fn name(&self) -> &'static str {
                "reversed"
            }
            fn map_factory(&self, factory: &Factory) -> Result<Layout> {
                // A deliberately silly custom strategy: the linear layout
                // with qubit ids reversed.
                let base = LinearMapper::new().map_factory(factory)?;
                let n = factory.num_qubits() as u32;
                let mut mapping = crate::Mapping::new(
                    factory.num_qubits(),
                    base.mapping.width(),
                    base.mapping.height(),
                );
                for q in 0..n {
                    let pos = base
                        .mapping
                        .position(msfu_circuit::QubitId::new(q))
                        .unwrap();
                    mapping.place(msfu_circuit::QubitId::new(n - 1 - q), pos)?;
                }
                Ok(Layout::new(mapping))
            }
        }
        let mut registry = MapperRegistry::empty();
        registry
            .register("reversed", |p| {
                ParamReader::new("reversed", p).finish()?;
                Ok(Box::new(Reversed) as Box<dyn FactoryMapper>)
            })
            .unwrap();
        let layout = registry
            .build("reversed", &MapperParams::new())
            .unwrap()
            .map_factory(&factory())
            .unwrap();
        assert!(layout.mapping.is_complete());
    }

    #[test]
    fn unknown_parameter_is_rejected() {
        let registry = MapperRegistry::with_builtins();
        let params = MapperParams::new().with_u64("sede", 1); // typo
        let err = registry.build("random", &params).err().expect("typo fails");
        assert!(err.to_string().contains("sede"), "{err}");
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let registry = MapperRegistry::with_builtins();
        let params = MapperParams::new().with_str("seed", "not-a-number");
        assert!(registry.build("random", &params).is_err());
    }

    #[test]
    fn registry_built_mappers_match_direct_construction() {
        let f = Factory::build(&FactoryConfig::two_level(2)).unwrap();
        let registry = MapperRegistry::with_builtins();

        let direct = RandomMapper::new(9).map_factory(&f).unwrap();
        let via = registry
            .build("random", &MapperParams::new().with_u64("seed", 9))
            .unwrap()
            .map_factory(&f)
            .unwrap();
        assert_eq!(direct, via);

        let cfg = StitchingConfig {
            seed: 4,
            ..StitchingConfig::default()
        };
        let direct = HierarchicalStitchingMapper::with_config(cfg)
            .map_factory(&f)
            .unwrap();
        let via = registry
            .build("hierarchical_stitching", &MapperParams::from(cfg))
            .unwrap()
            .map_factory(&f)
            .unwrap();
        assert_eq!(direct, via);
    }

    #[test]
    fn config_param_conversions_round_trip() {
        let fd = ForceDirectedConfig {
            seed: 3,
            iterations: 7,
            repulsion_sample: 123,
            temperature: 1.25,
            ..ForceDirectedConfig::default()
        };
        let params = MapperParams::from(fd);
        // Sparse: unchanged defaults are not recorded.
        assert_eq!(params.len(), 4);
        assert_eq!(force_directed_config_from_params(&params).unwrap(), fd);
        assert_eq!(
            force_directed_config_from_params(&MapperParams::new()).unwrap(),
            ForceDirectedConfig::default()
        );

        let hs = StitchingConfig {
            seed: 8,
            hop_strategy: HopStrategy::RandomHop,
            block_gap: 1,
            ..StitchingConfig::default()
        };
        let params = MapperParams::from(hs);
        assert_eq!(params.len(), 3);
        assert_eq!(stitching_config_from_params(&params).unwrap(), hs);
    }

    #[test]
    fn param_reader_widens_integers_to_floats() {
        let params = MapperParams::new().with_u64("expansion", 2);
        let mut r = ParamReader::new("random", &params);
        assert_eq!(r.f64_or("expansion", 1.0).unwrap(), 2.0);
        r.finish().unwrap();
    }
}
