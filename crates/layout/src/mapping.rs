//! Grid coordinates and the logical-qubit → cell mapping.

use serde::{Deserialize, Serialize};

use msfu_circuit::QubitId;
use msfu_graph::geometry::Point;

use crate::{LayoutError, Result};

/// A cell of the 2-D logical-qubit mesh, addressed by `(row, col)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Coord {
    /// Row index (0 at the top).
    pub row: usize,
    /// Column index (0 at the left).
    pub col: usize,
}

impl Coord {
    /// Creates a coordinate.
    pub const fn new(row: usize, col: usize) -> Self {
        Coord { row, col }
    }

    /// Manhattan distance to another cell.
    pub fn manhattan_distance(&self, other: &Coord) -> usize {
        self.row.abs_diff(other.row) + self.col.abs_diff(other.col)
    }

    /// Converts to a continuous [`Point`] (x = column, y = row).
    pub fn to_point(self) -> Point {
        Point::new(self.col as f64, self.row as f64)
    }

    /// The four orthogonal neighbours that stay within a `width`×`height`
    /// grid.
    pub fn neighbors(&self, width: usize, height: usize) -> Vec<Coord> {
        let mut out = Vec::with_capacity(4);
        if self.row > 0 {
            out.push(Coord::new(self.row - 1, self.col));
        }
        if self.row + 1 < height {
            out.push(Coord::new(self.row + 1, self.col));
        }
        if self.col > 0 {
            out.push(Coord::new(self.row, self.col - 1));
        }
        if self.col + 1 < width {
            out.push(Coord::new(self.row, self.col + 1));
        }
        out
    }
}

impl std::fmt::Display for Coord {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.row, self.col)
    }
}

/// A placement of logical qubits onto a `width`×`height` grid of surface-code
/// tiles. Each qubit occupies at most one cell and each cell holds at most one
/// qubit; braids route through cells, so unoccupied cells are routing slack.
///
/// # Example
///
/// ```
/// use msfu_circuit::QubitId;
/// use msfu_layout::{Coord, Mapping};
///
/// let mut m = Mapping::new(3, 3, 2);
/// m.place(QubitId::new(0), Coord::new(0, 0)).unwrap();
/// m.place(QubitId::new(1), Coord::new(1, 2)).unwrap();
/// m.place(QubitId::new(2), Coord::new(0, 1)).unwrap();
/// assert!(m.is_complete());
/// assert_eq!(m.used_area(), 6); // bounding box 2 rows x 3 cols
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    num_qubits: usize,
    width: usize,
    height: usize,
    /// position[q] = cell of qubit q, if placed.
    position: Vec<Option<Coord>>,
    /// occupant[row * width + col] = qubit occupying the cell, if any.
    occupant: Vec<Option<QubitId>>,
}

impl Mapping {
    /// Creates an empty mapping for `num_qubits` qubits on a `width`×`height`
    /// grid.
    pub fn new(num_qubits: usize, width: usize, height: usize) -> Self {
        Mapping {
            num_qubits,
            width,
            height,
            position: vec![None; num_qubits],
            occupant: vec![None; width * height],
        }
    }

    /// Grid width (number of columns).
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height (number of rows).
    pub fn height(&self) -> usize {
        self.height
    }

    /// Number of qubits this mapping covers.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Total number of grid cells.
    pub fn grid_area(&self) -> usize {
        self.width * self.height
    }

    fn cell_index(&self, cell: Coord) -> usize {
        cell.row * self.width + cell.col
    }

    /// Places a qubit on a cell.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::OutOfBounds`] if the cell is outside the grid
    /// and [`LayoutError::CellOccupied`] if another qubit already occupies it.
    /// Re-placing an already placed qubit moves it.
    pub fn place(&mut self, qubit: QubitId, cell: Coord) -> Result<()> {
        if cell.row >= self.height || cell.col >= self.width {
            return Err(LayoutError::OutOfBounds {
                cell,
                width: self.width,
                height: self.height,
            });
        }
        let idx = self.cell_index(cell);
        if let Some(existing) = self.occupant[idx] {
            if existing != qubit {
                return Err(LayoutError::CellOccupied {
                    cell,
                    occupant: existing,
                    claimant: qubit,
                });
            }
        }
        // Clear any previous position of this qubit.
        if let Some(old) = self.position[qubit.index()] {
            let old_idx = self.cell_index(old);
            self.occupant[old_idx] = None;
        }
        self.position[qubit.index()] = Some(cell);
        self.occupant[idx] = Some(qubit);
        Ok(())
    }

    /// Position of a qubit, if placed.
    pub fn position(&self, qubit: QubitId) -> Option<Coord> {
        self.position.get(qubit.index()).copied().flatten()
    }

    /// Position of a qubit, as an error if unplaced.
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::Unmapped`] when the qubit has no position.
    pub fn require_position(&self, qubit: QubitId) -> Result<Coord> {
        self.position(qubit).ok_or(LayoutError::Unmapped { qubit })
    }

    /// Qubit occupying a cell, if any.
    pub fn occupant(&self, cell: Coord) -> Option<QubitId> {
        if cell.row >= self.height || cell.col >= self.width {
            return None;
        }
        self.occupant[self.cell_index(cell)]
    }

    /// Returns `true` when every qubit has a position.
    pub fn is_complete(&self) -> bool {
        self.position.iter().all(Option::is_some)
    }

    /// Swaps the positions of two qubits (both must already be placed).
    ///
    /// # Errors
    ///
    /// Returns [`LayoutError::Unmapped`] if either qubit is unplaced.
    pub fn swap(&mut self, a: QubitId, b: QubitId) -> Result<()> {
        let pa = self.require_position(a)?;
        let pb = self.require_position(b)?;
        self.position[a.index()] = Some(pb);
        self.position[b.index()] = Some(pa);
        let idx_a = self.cell_index(pa);
        let idx_b = self.cell_index(pb);
        self.occupant[idx_a] = Some(b);
        self.occupant[idx_b] = Some(a);
        Ok(())
    }

    /// Moves a qubit to an empty cell.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`Mapping::place`], plus [`LayoutError::Unmapped`]
    /// if the qubit was never placed.
    pub fn relocate(&mut self, qubit: QubitId, cell: Coord) -> Result<()> {
        self.require_position(qubit)?;
        self.place(qubit, cell)
    }

    /// Cells not currently occupied by any qubit.
    pub fn free_cells(&self) -> Vec<Coord> {
        let mut out = Vec::new();
        for row in 0..self.height {
            for col in 0..self.width {
                let c = Coord::new(row, col);
                if self.occupant(c).is_none() {
                    out.push(c);
                }
            }
        }
        out
    }

    /// Number of occupied cells.
    pub fn occupied_count(&self) -> usize {
        self.position.iter().filter(|p| p.is_some()).count()
    }

    /// Area of the bounding box of all occupied cells (0 when nothing is
    /// placed). This is the "Area (qubits)" metric reported by Fig. 10 of the
    /// paper: the logical footprint actually consumed by the factory.
    pub fn used_area(&self) -> usize {
        let occupied: Vec<Coord> = self.position.iter().flatten().copied().collect();
        if occupied.is_empty() {
            return 0;
        }
        let min_row = occupied.iter().map(|c| c.row).min().unwrap();
        let max_row = occupied.iter().map(|c| c.row).max().unwrap();
        let min_col = occupied.iter().map(|c| c.col).min().unwrap();
        let max_col = occupied.iter().map(|c| c.col).max().unwrap();
        (max_row - min_row + 1) * (max_col - min_col + 1)
    }

    /// Continuous positions (one [`Point`] per qubit) for metric computation;
    /// unplaced qubits map to the origin.
    pub fn to_points(&self) -> Vec<Point> {
        self.position
            .iter()
            .map(|p| p.map(Coord::to_point).unwrap_or_default())
            .collect()
    }

    /// Grows the grid by appending `extra_rows` rows at the bottom, keeping
    /// all existing placements.
    pub fn grow_rows(&mut self, extra_rows: usize) {
        self.height += extra_rows;
        self.occupant.resize(self.width * self.height, None);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn coord_distance_and_neighbors() {
        let a = Coord::new(1, 1);
        let b = Coord::new(3, 4);
        assert_eq!(a.manhattan_distance(&b), 5);
        assert_eq!(a.to_point(), Point::new(1.0, 1.0));
        assert_eq!(a.neighbors(5, 5).len(), 4);
        assert_eq!(Coord::new(0, 0).neighbors(5, 5).len(), 2);
        assert_eq!(Coord::new(0, 0).neighbors(1, 1).len(), 0);
    }

    #[test]
    fn place_and_query() {
        let mut m = Mapping::new(2, 3, 3);
        m.place(q(0), Coord::new(0, 0)).unwrap();
        m.place(q(1), Coord::new(2, 2)).unwrap();
        assert_eq!(m.position(q(0)), Some(Coord::new(0, 0)));
        assert_eq!(m.occupant(Coord::new(2, 2)), Some(q(1)));
        assert!(m.is_complete());
        assert_eq!(m.occupied_count(), 2);
    }

    #[test]
    fn place_rejects_conflicts_and_out_of_bounds() {
        let mut m = Mapping::new(2, 2, 2);
        m.place(q(0), Coord::new(0, 0)).unwrap();
        let err = m.place(q(1), Coord::new(0, 0)).unwrap_err();
        assert!(matches!(err, LayoutError::CellOccupied { .. }));
        let err = m.place(q(1), Coord::new(5, 0)).unwrap_err();
        assert!(matches!(err, LayoutError::OutOfBounds { .. }));
    }

    #[test]
    fn replace_moves_the_qubit() {
        let mut m = Mapping::new(1, 3, 1);
        m.place(q(0), Coord::new(0, 0)).unwrap();
        m.place(q(0), Coord::new(0, 2)).unwrap();
        assert_eq!(m.position(q(0)), Some(Coord::new(0, 2)));
        assert_eq!(m.occupant(Coord::new(0, 0)), None);
    }

    #[test]
    fn swap_exchanges_positions() {
        let mut m = Mapping::new(2, 2, 1);
        m.place(q(0), Coord::new(0, 0)).unwrap();
        m.place(q(1), Coord::new(0, 1)).unwrap();
        m.swap(q(0), q(1)).unwrap();
        assert_eq!(m.position(q(0)), Some(Coord::new(0, 1)));
        assert_eq!(m.occupant(Coord::new(0, 0)), Some(q(1)));
    }

    #[test]
    fn swap_requires_both_placed() {
        let mut m = Mapping::new(2, 2, 1);
        m.place(q(0), Coord::new(0, 0)).unwrap();
        assert!(matches!(
            m.swap(q(0), q(1)),
            Err(LayoutError::Unmapped { .. })
        ));
    }

    #[test]
    fn used_area_is_bounding_box() {
        let mut m = Mapping::new(2, 10, 10);
        m.place(q(0), Coord::new(2, 2)).unwrap();
        m.place(q(1), Coord::new(4, 5)).unwrap();
        assert_eq!(m.used_area(), 3 * 4);
        assert_eq!(m.grid_area(), 100);
    }

    #[test]
    fn free_cells_shrink_as_qubits_are_placed() {
        let mut m = Mapping::new(1, 2, 2);
        assert_eq!(m.free_cells().len(), 4);
        m.place(q(0), Coord::new(1, 1)).unwrap();
        assert_eq!(m.free_cells().len(), 3);
    }

    #[test]
    fn grow_rows_preserves_placements() {
        let mut m = Mapping::new(1, 2, 2);
        m.place(q(0), Coord::new(1, 1)).unwrap();
        m.grow_rows(3);
        assert_eq!(m.height(), 5);
        assert_eq!(m.position(q(0)), Some(Coord::new(1, 1)));
        assert_eq!(m.occupant(Coord::new(4, 1)), None);
        m.place(QubitId::new(0), Coord::new(4, 0)).unwrap();
        assert_eq!(m.position(q(0)), Some(Coord::new(4, 0)));
    }

    #[test]
    fn to_points_defaults_unplaced_to_origin() {
        let mut m = Mapping::new(2, 3, 3);
        m.place(q(1), Coord::new(2, 1)).unwrap();
        let pts = m.to_points();
        assert_eq!(pts[0], Point::new(0.0, 0.0));
        assert_eq!(pts[1], Point::new(1.0, 2.0));
        assert_eq!(m.used_area(), 1);
    }
}
