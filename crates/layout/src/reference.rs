//! The full-recompute force-directed refinement, preserved as a reference
//! implementation.
//!
//! [`refine`] is the pre-delta-cost pipeline: every move candidate is priced
//! by [`CostModel::vertex_contribution`]/[`CostModel::move_delta`], which scan
//! the complete edge list per incident edge, and every sweep re-evaluates the
//! exact total with [`CostModel::total`]. The production
//! [`ForceDirectedMapper::refine`](crate::ForceDirectedMapper::refine)
//! replaces those with bounding-box-pruned evaluators over reusable scratch;
//! `tests/refine_equivalence.rs` asserts both produce byte-identical mappings
//! across seeded configurations, and `msfu_bench::perf` times this module
//! against the production path to record the mapping-phase speedup.

use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use msfu_circuit::QubitId;
use msfu_graph::geometry::{centroid, Point};
use msfu_graph::{community, kmeans, InteractionGraph};

use crate::cost::CostModel;
use crate::dipole::{dipole_forces, pole_coloring};
use crate::force_directed::{offset, step};
use crate::{Coord, ForceDirectedConfig, Mapping, Result};

/// Refines an existing placement by force-directed annealing, pricing every
/// move with the full-recompute cost model. Byte-identical results to
/// [`ForceDirectedMapper::refine`](crate::ForceDirectedMapper::refine) for
/// the same inputs.
///
/// # Errors
///
/// Mirrors the production refinement (placement bookkeeping failures).
pub fn refine(
    cfg: &ForceDirectedConfig,
    graph: &InteractionGraph,
    initial: &Mapping,
) -> Result<Mapping> {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    let mut mapping = initial.clone();
    let mut positions = mapping.to_points();
    let cost_model = CostModel::new(graph, cfg.weights);

    let mut best_mapping = mapping.clone();
    let mut best_cost = cost_model.total(&positions);

    let poles = if cfg.dipole > 0.0 {
        Some(pole_coloring(graph))
    } else {
        None
    };
    let communities = if cfg.use_communities {
        Some(community::louvain(graph, &mut rng))
    } else {
        None
    };

    let active: Vec<usize> = graph.active_vertices();
    let mut temperature = cfg.temperature;

    for sweep in 0..cfg.iterations {
        let forces = compute_forces(cfg, graph, &positions, poles.as_deref(), &mut rng);

        let mut order = active.clone();
        order.shuffle(&mut rng);
        for &v in &order {
            let force = forces[v];
            let step_row = step(force.y);
            let step_col = step(force.x);
            if step_row == 0 && step_col == 0 {
                continue;
            }
            let current = match mapping.position(QubitId::new(v as u32)) {
                Some(c) => c,
                None => continue,
            };
            let target_row = offset(current.row, step_row, mapping.height());
            let target_col = offset(current.col, step_col, mapping.width());
            let target = Coord::new(target_row, target_col);
            if target == current {
                continue;
            }
            try_move(
                &cost_model,
                &mut mapping,
                &mut positions,
                v,
                target,
                temperature,
                &mut rng,
            );
        }

        // Community escape moves.
        if let Some(comms) = &communities {
            if cfg.community_interval > 0 && (sweep + 1) % cfg.community_interval == 0 {
                community_moves(
                    comms,
                    &cost_model,
                    &mut mapping,
                    &mut positions,
                    temperature * 2.0,
                    &mut rng,
                );
            }
        }

        // Track the best placement by exact cost.
        let current_cost = cost_model.total(&positions);
        if current_cost < best_cost {
            best_cost = current_cost;
            best_mapping = mapping.clone();
        }
        temperature *= cfg.cooling;
    }
    Ok(best_mapping)
}

/// Computes the combined force field on every vertex (allocating variant).
fn compute_forces(
    cfg: &ForceDirectedConfig,
    graph: &InteractionGraph,
    positions: &[Point],
    poles: Option<&[crate::dipole::Pole]>,
    rng: &mut ChaCha8Rng,
) -> Vec<Point> {
    let n = graph.num_vertices();
    let mut forces = vec![Point::default(); n];

    // Vertex-vertex attraction towards the neighbourhood centroid.
    if cfg.attraction > 0.0 {
        for v in 0..n {
            let neighbors = graph.neighbors(v);
            if neighbors.is_empty() {
                continue;
            }
            let pts: Vec<Point> = neighbors.iter().map(|(u, _)| positions[*u]).collect();
            let c = centroid(&pts);
            forces[v] = forces[v] + (c - positions[v]) * cfg.attraction;
        }
    }

    // Edge-edge midpoint repulsion (sampled pairs).
    if cfg.repulsion > 0.0 {
        let edges = graph.edges();
        let m = edges.len();
        if m >= 2 {
            let total_pairs = m * (m - 1) / 2;
            let samples = cfg.repulsion_sample.min(total_pairs);
            for _ in 0..samples {
                let i = rng.gen_range(0..m);
                let mut j = rng.gen_range(0..m);
                while j == i {
                    j = rng.gen_range(0..m);
                }
                let (a, b, _) = edges[i];
                let (c, d, _) = edges[j];
                let m1 = positions[a].midpoint(&positions[b]);
                let m2 = positions[c].midpoint(&positions[d]);
                let delta = m1 - m2;
                let dist = (delta.x * delta.x + delta.y * delta.y).sqrt().max(0.5);
                let magnitude = cfg.repulsion / (dist * dist);
                let unit = Point::new(delta.x / dist, delta.y / dist);
                let push = unit * magnitude;
                forces[a] = forces[a] + push;
                forces[b] = forces[b] + push;
                forces[c] = forces[c] - push;
                forces[d] = forces[d] - push;
            }
        }
    }

    // Magnetic-dipole rotation.
    if let Some(poles) = poles {
        let dipole = dipole_forces(graph, positions, poles, cfg.dipole, cfg.dipole_cutoff);
        for v in 0..n {
            forces[v] = forces[v] + dipole[v];
        }
    }
    forces
}

/// Attempts to move vertex `v` to `target`, pricing with the full-recompute
/// evaluators.
fn try_move(
    cost_model: &CostModel<'_>,
    mapping: &mut Mapping,
    positions: &mut [Point],
    v: usize,
    target: Coord,
    temperature: f64,
    rng: &mut ChaCha8Rng,
) -> bool {
    let qubit = QubitId::new(v as u32);
    let accept = |delta: f64, rng: &mut ChaCha8Rng| -> bool {
        delta < 0.0 || (temperature > 1e-9 && rng.gen::<f64>() < (-delta / temperature).exp())
    };
    match mapping.occupant(target) {
        None => {
            let delta = cost_model.move_delta(v, positions, target.to_point());
            if accept(delta, rng) {
                mapping
                    .relocate(qubit, target)
                    .expect("target cell verified free and in bounds");
                positions[v] = target.to_point();
                true
            } else {
                false
            }
        }
        Some(other) if other != qubit => {
            let u = other.index();
            let pv = positions[v];
            let pu = positions[u];
            let before = cost_model.vertex_contribution(v, positions)
                + cost_model.vertex_contribution(u, positions);
            positions[v] = pu;
            positions[u] = pv;
            let after = cost_model.vertex_contribution(v, positions)
                + cost_model.vertex_contribution(u, positions);
            let delta = after - before;
            if accept(delta, rng) {
                mapping.swap(qubit, other).expect("both qubits are placed");
                true
            } else {
                positions[v] = pv;
                positions[u] = pu;
                false
            }
        }
        _ => false,
    }
}

/// Community escape moves of the reference pipeline.
fn community_moves(
    communities: &community::Communities,
    cost_model: &CostModel<'_>,
    mapping: &mut Mapping,
    positions: &mut [Point],
    temperature: f64,
    rng: &mut ChaCha8Rng,
) {
    for group in communities.groups() {
        if group.len() < 4 {
            continue;
        }
        let pts: Vec<Point> = group.iter().map(|v| positions[*v]).collect();
        let clustering = kmeans::kmeans(&pts, 2, 20, rng);
        if clustering.num_clusters() < 2 {
            continue;
        }
        let sizes: Vec<usize> = (0..clustering.num_clusters())
            .map(|c| clustering.members(c).len())
            .collect();
        let largest = sizes
            .iter()
            .enumerate()
            .max_by_key(|(_, s)| **s)
            .map(|(i, _)| i)
            .unwrap_or(0);
        let target_centroid = clustering.centroids[largest];
        for (local, &vertex) in group.iter().enumerate() {
            if clustering.assignment[local] == largest {
                continue;
            }
            let current = match mapping.position(QubitId::new(vertex as u32)) {
                Some(c) => c,
                None => continue,
            };
            let dir = target_centroid - positions[vertex];
            let target = Coord::new(
                offset(current.row, step(dir.y), mapping.height()),
                offset(current.col, step(dir.x), mapping.width()),
            );
            if target != current {
                try_move(
                    cost_model,
                    mapping,
                    positions,
                    vertex,
                    target,
                    temperature,
                    rng,
                );
            }
        }
    }
}
