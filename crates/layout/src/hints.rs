//! Routing hints handed from the mapper to the braid simulator.

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use msfu_circuit::QubitId;

use crate::Coord;

/// Per-interaction routing hints produced by a mapper and consumed by the
/// braid router.
///
/// Today the only hint is a *waypoint* (Valiant-style intermediate
/// destination, Section VII-B3 of the paper): a braid between the hinted
/// qubit pair is routed source → waypoint → destination instead of directly.
/// Hints are keyed by the unordered qubit pair.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoutingHints {
    waypoints: HashMap<(QubitId, QubitId), Coord>,
}

impl RoutingHints {
    /// Creates an empty hint set.
    pub fn new() -> Self {
        Self::default()
    }

    fn key(a: QubitId, b: QubitId) -> (QubitId, QubitId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Registers a waypoint for braids between `a` and `b` (order
    /// irrelevant). A later registration for the same pair overwrites the
    /// earlier one.
    pub fn set_waypoint(&mut self, a: QubitId, b: QubitId, waypoint: Coord) {
        self.waypoints.insert(Self::key(a, b), waypoint);
    }

    /// The waypoint registered for the pair, if any.
    pub fn waypoint(&self, a: QubitId, b: QubitId) -> Option<Coord> {
        self.waypoints.get(&Self::key(a, b)).copied()
    }

    /// Number of registered waypoints.
    pub fn len(&self) -> usize {
        self.waypoints.len()
    }

    /// Returns `true` when no hints are registered.
    pub fn is_empty(&self) -> bool {
        self.waypoints.is_empty()
    }

    /// Iterates over `((a, b), waypoint)` entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&(QubitId, QubitId), &Coord)> {
        self.waypoints.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(i: u32) -> QubitId {
        QubitId::new(i)
    }

    #[test]
    fn waypoints_are_order_insensitive() {
        let mut h = RoutingHints::new();
        h.set_waypoint(q(3), q(1), Coord::new(2, 2));
        assert_eq!(h.waypoint(q(1), q(3)), Some(Coord::new(2, 2)));
        assert_eq!(h.waypoint(q(3), q(1)), Some(Coord::new(2, 2)));
        assert_eq!(h.waypoint(q(1), q(2)), None);
        assert_eq!(h.len(), 1);
        assert!(!h.is_empty());
    }

    #[test]
    fn later_registration_overwrites() {
        let mut h = RoutingHints::new();
        h.set_waypoint(q(0), q(1), Coord::new(0, 0));
        h.set_waypoint(q(1), q(0), Coord::new(5, 5));
        assert_eq!(h.waypoint(q(0), q(1)), Some(Coord::new(5, 5)));
        assert_eq!(h.len(), 1);
    }

    #[test]
    fn default_is_empty() {
        let h = RoutingHints::default();
        assert!(h.is_empty());
        assert_eq!(h.iter().count(), 0);
    }
}
