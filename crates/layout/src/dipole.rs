//! Magnetic-dipole edge-rotation heuristic (Section VI-B1 of the paper).
//!
//! Every vertex is assigned a north or south pole by a 2-colouring of the
//! interaction graph; attractive forces act between opposite poles and
//! repulsive forces between identical poles. The resulting torque on each
//! edge prefers (anti-)parallel edge orientations over intersecting ones,
//! which empirically reduces edge crossings — the metric with the strongest
//! correlation to circuit latency (r ≈ 0.83 in Fig. 6).

use msfu_graph::geometry::Point;
use msfu_graph::InteractionGraph;

/// Pole assigned to a vertex.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pole {
    /// North pole (+).
    North,
    /// South pole (−).
    South,
}

impl Pole {
    /// Sign of the pole: `+1` for north, `−1` for south.
    pub fn sign(self) -> f64 {
        match self {
            Pole::North => 1.0,
            Pole::South => -1.0,
        }
    }

    fn flip(self) -> Pole {
        match self {
            Pole::North => Pole::South,
            Pole::South => Pole::North,
        }
    }
}

/// Assigns poles by a greedy BFS 2-colouring of the interaction graph.
///
/// The paper notes the graph restricted to any single timestep is always
/// 2-colourable (each qubit has degree ≤ 2 and multi-target CNOTs look like
/// vertex-disjoint stars); the full interaction graph generally is not, so the
/// colouring is best-effort: when a conflict is unavoidable the vertex keeps
/// the colour opposite to the majority of its already-coloured neighbours.
pub fn pole_coloring(graph: &InteractionGraph) -> Vec<Pole> {
    let n = graph.num_vertices();
    let mut poles: Vec<Option<Pole>> = vec![None; n];
    for start in 0..n {
        if poles[start].is_some() {
            continue;
        }
        poles[start] = Some(Pole::North);
        let mut queue = std::collections::VecDeque::from([start]);
        while let Some(v) = queue.pop_front() {
            let my_pole = poles[v].expect("queued vertices are coloured");
            for (nb, _) in graph.neighbors(v) {
                if poles[*nb].is_none() {
                    poles[*nb] = Some(my_pole.flip());
                    queue.push_back(*nb);
                }
            }
        }
    }
    // Resolve remaining conflicts towards the minority colour of neighbours.
    let mut result: Vec<Pole> = poles
        .into_iter()
        .map(|p| p.unwrap_or(Pole::North))
        .collect();
    for v in 0..n {
        let mut north = 0usize;
        let mut south = 0usize;
        for (nb, _) in graph.neighbors(v) {
            match result[*nb] {
                Pole::North => north += 1,
                Pole::South => south += 1,
            }
        }
        if north > south && result[v] == Pole::North {
            result[v] = Pole::South;
        } else if south > north && result[v] == Pole::South {
            result[v] = Pole::North;
        }
    }
    result
}

/// Fraction of edges whose endpoints carry opposite poles (1.0 for a perfect
/// 2-colouring).
pub fn coloring_quality(graph: &InteractionGraph, poles: &[Pole]) -> f64 {
    if graph.num_edges() == 0 {
        return 1.0;
    }
    let good = graph
        .edges()
        .iter()
        .filter(|(u, v, _)| poles[*u] != poles[*v])
        .count();
    good as f64 / graph.num_edges() as f64
}

/// Computes the dipole force on every vertex: pairs of vertices attract when
/// their poles differ and repel when they match, with an inverse-square
/// falloff truncated at `cutoff`. Only vertices that participate in at least
/// one edge feel or exert dipole forces.
pub fn dipole_forces(
    graph: &InteractionGraph,
    positions: &[Point],
    poles: &[Pole],
    strength: f64,
    cutoff: f64,
) -> Vec<Point> {
    let active = graph.active_vertices();
    let mut forces = Vec::new();
    dipole_forces_into(
        graph,
        positions,
        poles,
        strength,
        cutoff,
        &active,
        &mut forces,
    );
    forces
}

/// [`dipole_forces`] into a caller-owned buffer with a precomputed active
/// vertex list, so per-sweep callers (the force-directed refinement) avoid
/// reallocating both. Identical results to [`dipole_forces`].
pub fn dipole_forces_into(
    graph: &InteractionGraph,
    positions: &[Point],
    poles: &[Pole],
    strength: f64,
    cutoff: f64,
    active: &[usize],
    forces: &mut Vec<Point>,
) {
    let n = graph.num_vertices();
    forces.clear();
    forces.resize(n, Point::default());
    for i in 0..active.len() {
        for j in (i + 1)..active.len() {
            let (a, b) = (active[i], active[j]);
            let delta = positions[b] - positions[a];
            let dist = (delta.x * delta.x + delta.y * delta.y).sqrt().max(0.5);
            if dist > cutoff {
                continue;
            }
            // Opposite poles attract (sign product −1 ⇒ force towards each
            // other); identical poles repel.
            let polarity = poles[a].sign() * poles[b].sign();
            let magnitude = -polarity * strength / (dist * dist);
            let unit = Point::new(delta.x / dist, delta.y / dist);
            forces[a] = forces[a] + unit * magnitude;
            forces[b] = forces[b] - unit * magnitude;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_graph_is_perfectly_two_colored() {
        let g = InteractionGraph::from_edges(4, [(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]);
        let poles = pole_coloring(&g);
        assert_eq!(coloring_quality(&g, &poles), 1.0);
        assert_ne!(poles[0], poles[1]);
        assert_ne!(poles[1], poles[2]);
    }

    #[test]
    fn odd_cycle_has_exactly_one_bad_edge() {
        let g = InteractionGraph::from_edges(3, [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0)]);
        let poles = pole_coloring(&g);
        let q = coloring_quality(&g, &poles);
        assert!((q - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_quality_is_one() {
        let g = InteractionGraph::empty(3);
        let poles = pole_coloring(&g);
        assert_eq!(poles.len(), 3);
        assert_eq!(coloring_quality(&g, &poles), 1.0);
    }

    #[test]
    fn opposite_poles_attract() {
        let g = InteractionGraph::from_edges(2, [(0, 1, 1.0)]);
        let poles = vec![Pole::North, Pole::South];
        let positions = vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)];
        let forces = dipole_forces(&g, &positions, &poles, 1.0, 100.0);
        // Vertex 0 is pulled towards +x (towards vertex 1).
        assert!(forces[0].x > 0.0);
        assert!(forces[1].x < 0.0);
    }

    #[test]
    fn identical_poles_repel() {
        let g = InteractionGraph::from_edges(2, [(0, 1, 1.0)]);
        let poles = vec![Pole::North, Pole::North];
        let positions = vec![Point::new(0.0, 0.0), Point::new(4.0, 0.0)];
        let forces = dipole_forces(&g, &positions, &poles, 1.0, 100.0);
        assert!(forces[0].x < 0.0);
        assert!(forces[1].x > 0.0);
    }

    #[test]
    fn cutoff_suppresses_distant_interactions() {
        let g = InteractionGraph::from_edges(2, [(0, 1, 1.0)]);
        let poles = vec![Pole::North, Pole::South];
        let positions = vec![Point::new(0.0, 0.0), Point::new(50.0, 0.0)];
        let forces = dipole_forces(&g, &positions, &poles, 1.0, 10.0);
        assert_eq!(forces[0], Point::default());
        assert_eq!(forces[1], Point::default());
    }

    #[test]
    fn isolated_vertices_feel_no_force() {
        let g = InteractionGraph::from_edges(3, [(0, 1, 1.0)]);
        let poles = pole_coloring(&g);
        let positions = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.5, 0.5),
        ];
        let forces = dipole_forces(&g, &positions, &poles, 1.0, 100.0);
        assert_eq!(forces[2], Point::default());
    }
}
