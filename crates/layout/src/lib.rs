//! # msfu-layout
//!
//! Qubit mapping (placement) algorithms for surface-code braided
//! architectures, implementing every mapping strategy evaluated by the MSFU
//! paper (Ding et al., MICRO 2018):
//!
//! * [`LinearMapper`] — the Fowler-style hand-tuned per-module baseline
//!   ("Line" in Table I).
//! * [`RandomMapper`] — randomised placement ("Random" in Table I, and the
//!   mapping generator behind the Fig. 6 correlation study).
//! * [`ForceDirectedMapper`] — force-directed annealing with vertex–vertex
//!   attraction, edge–edge repulsion, magnetic-dipole edge rotation and
//!   community-structure escape moves (Section VI-B1).
//! * [`GraphPartitionMapper`] — recursive graph bisection matched to recursive
//!   grid bisection (Section VI-B2).
//! * [`HierarchicalStitchingMapper`] — the paper's contribution (Section VII):
//!   per-round near-optimal planar embeddings stitched together with qubit
//!   reuse region selection, output-port reassignment and Valiant-style
//!   annealed intermediate hops for the inter-round permutation.
//!
//! The line-up is open, not closed: every strategy implements the dyn-safe
//! [`FactoryMapper`] trait, and the [`MapperRegistry`] resolves
//! `(name, params)` pairs into boxed mappers — the five paper strategies are
//! registered as built-ins, and callers can register their own (see the
//! `registry` module docs).
//!
//! The common currency is the [`Mapping`] (logical qubit → grid cell) plus
//! optional [`RoutingHints`] (per-interaction waypoints) consumed by the braid
//! simulator.
//!
//! # Example
//!
//! ```
//! use msfu_distill::{Factory, FactoryConfig};
//! use msfu_layout::{FactoryMapper, LinearMapper};
//!
//! let factory = Factory::build(&FactoryConfig::single_level(4)).unwrap();
//! let layout = LinearMapper::new().map_factory(&factory).unwrap();
//! assert!(layout.mapping.is_complete());
//! assert!(layout.mapping.used_area() >= factory.num_qubits());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cost;
pub mod dipole;
mod error;
mod force_directed;
mod graph_partition;
mod hints;
mod linear;
mod mapper;
mod mapping;
mod random;
pub mod reference;
mod registry;
mod stitching;

pub use error::LayoutError;
pub use force_directed::{ForceDirectedConfig, ForceDirectedMapper};
pub use graph_partition::GraphPartitionMapper;
pub use hints::RoutingHints;
pub use linear::LinearMapper;
pub use mapper::{FactoryMapper, Layout};
pub use mapping::{Coord, Mapping};
pub use random::RandomMapper;
pub use registry::{
    force_directed_config_from_params, stitching_config_from_params, MapperBuilder, MapperParams,
    MapperRegistry, ParamReader, ParamValue,
};
pub use stitching::{HierarchicalStitchingMapper, HopStrategy, StitchingConfig};

/// Convenience result alias used by fallible APIs in this crate.
pub type Result<T> = std::result::Result<T, LayoutError>;
