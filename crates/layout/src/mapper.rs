//! The mapper abstraction shared by every placement strategy.

use msfu_distill::{Factory, PortAssignment};

use crate::{Mapping, Result, RoutingHints};

/// The product of a mapping strategy: a qubit placement, optional routing
/// hints for the braid simulator, and the output-port rebinding the strategy
/// wants applied to the factory.
///
/// Mapping never mutates the factory: strategies that re-bind output ports
/// (hierarchical stitching) record the decision in [`Layout::ports`], and the
/// evaluation layer applies it to a private copy via
/// [`Factory::apply_port_assignment`].
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    /// Placement of every logical qubit of the factory.
    pub mapping: Mapping,
    /// Waypoint hints for selected interactions (may be empty).
    pub hints: RoutingHints,
    /// Output-port swaps the consumer must apply to the factory before
    /// simulating under this layout (empty for most strategies).
    pub ports: PortAssignment,
}

impl Layout {
    /// Creates a layout with no routing hints and no port rewiring.
    pub fn new(mapping: Mapping) -> Self {
        Layout {
            mapping,
            hints: RoutingHints::new(),
            ports: PortAssignment::new(),
        }
    }

    /// Creates a layout with routing hints and no port rewiring.
    pub fn with_hints(mapping: Mapping, hints: RoutingHints) -> Self {
        Layout {
            mapping,
            hints,
            ports: PortAssignment::new(),
        }
    }

    /// Attaches a port assignment to the layout.
    pub fn with_ports(mut self, ports: PortAssignment) -> Self {
        self.ports = ports;
        self
    }

    /// Returns `true` when simulating under this layout requires rewiring the
    /// factory's output ports first.
    pub fn requires_port_rewiring(&self) -> bool {
        !self.ports.is_empty()
    }
}

/// A placement strategy for distillation factories.
///
/// Every strategy of Table I of the paper implements this trait: `Random`,
/// `Line` (linear), `FD` (force-directed), `GP` (graph partitioning) and `HS`
/// (hierarchical stitching).
pub trait FactoryMapper {
    /// Short human-readable name of the strategy (used by reports).
    fn name(&self) -> &'static str;

    /// Produces a placement for every logical qubit of the factory.
    ///
    /// # Errors
    ///
    /// Returns an error if the factory cannot be placed (degenerate factory,
    /// internal grid sizing failure).
    fn map_factory(&self, factory: &Factory) -> Result<Layout>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coord;
    use msfu_circuit::QubitId;

    #[test]
    fn layout_constructors() {
        let mut mapping = Mapping::new(1, 2, 2);
        mapping.place(QubitId::new(0), Coord::new(0, 0)).unwrap();
        let l = Layout::new(mapping.clone());
        assert!(l.hints.is_empty());
        let mut hints = RoutingHints::new();
        hints.set_waypoint(QubitId::new(0), QubitId::new(0), Coord::new(1, 1));
        let l = Layout::with_hints(mapping, hints);
        assert_eq!(l.hints.len(), 1);
    }
}
