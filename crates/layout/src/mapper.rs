//! The mapper abstraction shared by every placement strategy.

use msfu_distill::Factory;

use crate::{Mapping, Result, RoutingHints};

/// The product of a mapping strategy: a qubit placement plus optional routing
/// hints for the braid simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct Layout {
    /// Placement of every logical qubit of the factory.
    pub mapping: Mapping,
    /// Waypoint hints for selected interactions (may be empty).
    pub hints: RoutingHints,
}

impl Layout {
    /// Creates a layout with no routing hints.
    pub fn new(mapping: Mapping) -> Self {
        Layout {
            mapping,
            hints: RoutingHints::new(),
        }
    }

    /// Creates a layout with routing hints.
    pub fn with_hints(mapping: Mapping, hints: RoutingHints) -> Self {
        Layout { mapping, hints }
    }
}

/// A placement strategy for distillation factories.
///
/// Every strategy of Table I of the paper implements this trait: `Random`,
/// `Line` (linear), `FD` (force-directed), `GP` (graph partitioning) and `HS`
/// (hierarchical stitching).
pub trait FactoryMapper {
    /// Short human-readable name of the strategy (used by reports).
    fn name(&self) -> &'static str;

    /// Produces a placement for every logical qubit of the factory.
    ///
    /// # Errors
    ///
    /// Returns an error if the factory cannot be placed (degenerate factory,
    /// internal grid sizing failure).
    fn map_factory(&self, factory: &Factory) -> Result<Layout>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Coord;
    use msfu_circuit::QubitId;

    #[test]
    fn layout_constructors() {
        let mut mapping = Mapping::new(1, 2, 2);
        mapping.place(QubitId::new(0), Coord::new(0, 0)).unwrap();
        let l = Layout::new(mapping.clone());
        assert!(l.hints.is_empty());
        let mut hints = RoutingHints::new();
        hints.set_waypoint(QubitId::new(0), QubitId::new(0), Coord::new(1, 1));
        let l = Layout::with_hints(mapping, hints);
        assert_eq!(l.hints.len(), 1);
    }
}
