//! Randomised placement ("Random" in Table I and the mapping generator for
//! the Fig. 6 metric-correlation study).

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use msfu_circuit::QubitId;
use msfu_distill::Factory;

use crate::{Coord, FactoryMapper, Layout, LayoutError, Mapping, Result};

/// Places qubits uniformly at random onto a square grid.
///
/// The grid side is `ceil(sqrt(n · expansion))`; an expansion factor of 1.0
/// gives the most compact square that holds all qubits, larger values leave
/// free cells as routing slack.
#[derive(Debug, Clone)]
pub struct RandomMapper {
    seed: u64,
    expansion: f64,
}

impl RandomMapper {
    /// Creates a mapper with the given RNG seed and an expansion factor of 1.0.
    pub fn new(seed: u64) -> Self {
        RandomMapper {
            seed,
            expansion: 1.0,
        }
    }

    /// Sets the grid expansion factor (≥ 1.0).
    pub fn with_expansion(mut self, expansion: f64) -> Self {
        self.expansion = expansion.max(1.0);
        self
    }

    /// Produces a random placement of `num_qubits` qubits, independent of any
    /// factory structure. Useful for the Fig. 6 study which randomises the
    /// mapping of a fixed circuit.
    pub fn map_qubits(&self, num_qubits: usize) -> Result<Mapping> {
        if num_qubits == 0 {
            return Err(LayoutError::UnsupportedFactory {
                reason: "no qubits to place".into(),
            });
        }
        let side = ((num_qubits as f64 * self.expansion).sqrt().ceil() as usize).max(1);
        let mut mapping = Mapping::new(num_qubits, side, side);
        let mut cells: Vec<Coord> = (0..side)
            .flat_map(|r| (0..side).map(move |c| Coord::new(r, c)))
            .collect();
        if cells.len() < num_qubits {
            return Err(LayoutError::GridTooSmall {
                qubits: num_qubits,
                cells: cells.len(),
            });
        }
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        cells.shuffle(&mut rng);
        for (i, cell) in cells.into_iter().take(num_qubits).enumerate() {
            mapping.place(QubitId::new(i as u32), cell)?;
        }
        Ok(mapping)
    }
}

impl FactoryMapper for RandomMapper {
    fn name(&self) -> &'static str {
        "random"
    }

    fn map_factory(&self, factory: &Factory) -> Result<Layout> {
        Ok(Layout::new(self.map_qubits(factory.num_qubits())?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_distill::FactoryConfig;

    #[test]
    fn random_placement_is_complete_and_collision_free() {
        let f = Factory::build(&FactoryConfig::single_level(8)).unwrap();
        let layout = RandomMapper::new(1).map_factory(&f).unwrap();
        assert!(layout.mapping.is_complete());
        let mut seen = std::collections::HashSet::new();
        for q in 0..f.num_qubits() as u32 {
            assert!(seen.insert(layout.mapping.position(QubitId::new(q)).unwrap()));
        }
    }

    #[test]
    fn same_seed_is_deterministic() {
        let a = RandomMapper::new(42).map_qubits(30).unwrap();
        let b = RandomMapper::new(42).map_qubits(30).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomMapper::new(1).map_qubits(30).unwrap();
        let b = RandomMapper::new(2).map_qubits(30).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn expansion_grows_the_grid() {
        let compact = RandomMapper::new(1).map_qubits(25).unwrap();
        let sparse = RandomMapper::new(1)
            .with_expansion(2.0)
            .map_qubits(25)
            .unwrap();
        assert!(sparse.grid_area() > compact.grid_area());
        assert_eq!(compact.grid_area(), 25);
    }

    #[test]
    fn zero_qubits_is_an_error() {
        assert!(RandomMapper::new(0).map_qubits(0).is_err());
    }

    #[test]
    fn expansion_below_one_is_clamped() {
        let m = RandomMapper::new(1)
            .with_expansion(0.1)
            .map_qubits(9)
            .unwrap();
        assert_eq!(m.grid_area(), 9);
    }
}
