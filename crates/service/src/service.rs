//! The job executor: one [`Request`] in, one [`Response`] out, with
//! streaming progress and cooperative cancellation in between.

use std::time::{Duration, Instant};

use msfu_core::{evaluate, CancelToken, ProgressSink, RunControl};

use crate::protocol::{Job, Payload, Request, Response, ResponsePerf, ServiceError};

/// A handle onto one running (or about-to-run) job: clone-free cancellation
/// from any thread.
///
/// The handle owns a [`CancelToken`]; cancelling it stops the job at its
/// next batch boundary, after which the response carries the partial results
/// completed so far with `cancelled: true`. The per-thread simulator engines
/// are left intact and reusable — a cancelled job costs nothing beyond the
/// batches it finished.
#[derive(Debug, Clone, Default)]
pub struct JobHandle {
    token: CancelToken,
}

impl JobHandle {
    /// Creates a fresh handle.
    pub fn new() -> Self {
        JobHandle::default()
    }

    /// Requests cooperative cancellation (idempotent, any thread).
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.token.is_cancelled()
    }

    /// The underlying token (clone it to share with watchdog threads).
    pub fn token(&self) -> &CancelToken {
        &self.token
    }
}

/// The service façade: executes requests against the evaluation pipeline.
///
/// The service itself is stateless; per-worker simulator engines live in
/// thread-local storage and are reused across every job a thread executes,
/// so a long-lived process (e.g. `msfu serve`) pays arena allocations once.
#[derive(Debug, Clone, Copy, Default)]
#[non_exhaustive]
pub struct Service;

impl Service {
    /// Creates the service.
    pub fn new() -> Self {
        Service
    }

    /// Executes one request to completion (or cancellation/deadline),
    /// streaming progress events to `progress`.
    ///
    /// Never panics on bad input: every failure becomes a typed error
    /// response carrying a stable code from
    /// [`crate::error_code::ALL_ERROR_CODES`].
    pub fn run(
        &self,
        request: &Request,
        handle: &JobHandle,
        progress: &dyn ProgressSink,
    ) -> Response {
        let start = Instant::now();
        let mut ctrl = RunControl::default()
            .with_progress(progress)
            .with_cancel(handle.token());
        if let Some(ms) = request.deadline_ms {
            ctrl = ctrl.with_deadline(start + Duration::from_millis(ms));
        }
        let (result, cancelled) = match &request.job {
            // A single evaluation is one bounded simulation — it has no batch
            // boundaries, so it runs to completion even if cancelled mid-way.
            Job::Evaluate {
                factory,
                strategy,
                eval,
            } => (
                evaluate(factory, strategy, eval)
                    .map(|e| Payload::Evaluate(Box::new(e)))
                    .map_err(|e| ServiceError::from_core(&e)),
                false,
            ),
            Job::Sweep { spec } => {
                let outcome = if request.serial {
                    spec.run_serial_with(&ctrl)
                } else {
                    spec.run_with(&ctrl)
                };
                match outcome {
                    Ok(outcome) => (Ok(Payload::Sweep(outcome.results)), outcome.interrupted),
                    Err(e) => (Err(ServiceError::from_core(&e)), false),
                }
            }
            Job::Search { spec } => {
                let outcome = if request.serial {
                    spec.run_serial_with(&ctrl)
                } else {
                    spec.run_with(&ctrl)
                };
                match outcome {
                    Ok(outcome) => (
                        Ok(Payload::Search(Box::new(outcome.report))),
                        outcome.interrupted,
                    ),
                    Err(e) => (Err(ServiceError::from_core(&e)), false),
                }
            }
            // The streaming engine is inherently sequential (one shared
            // clock), so `serial` changes nothing — results are identical
            // either way.
            Job::Stream { spec } => match spec.run_with(&ctrl) {
                Ok(outcome) => (
                    Ok(Payload::Stream(Box::new(outcome.report))),
                    outcome.interrupted,
                ),
                Err(e) => (Err(ServiceError::from_core(&e)), false),
            },
        };
        Response::new(
            request.id.clone(),
            request.job.kind(),
            cancelled,
            ResponsePerf::new(start.elapsed().as_secs_f64(), request.serial),
            result,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_core::{EvaluationConfig, NoProgress, Strategy, SweepSpec};
    use msfu_distill::FactoryConfig;

    fn tiny_sweep(name: &str) -> SweepSpec {
        SweepSpec::new(name, EvaluationConfig::default())
            .point("a", FactoryConfig::single_level(2), Strategy::linear())
            .point("b", FactoryConfig::single_level(2), Strategy::random(1))
    }

    #[test]
    fn evaluate_request_matches_direct_evaluation() {
        let request = Request::evaluate(
            "e",
            FactoryConfig::single_level(2),
            Strategy::linear(),
            EvaluationConfig::default(),
        );
        let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
        let Ok(Payload::Evaluate(from_service)) = response.result else {
            panic!("expected an evaluation payload")
        };
        let direct = evaluate(
            &FactoryConfig::single_level(2),
            &Strategy::linear(),
            &EvaluationConfig::default(),
        )
        .unwrap();
        assert_eq!(*from_service, direct);
        assert!(!response.cancelled);
        assert_eq!(response.kind, "evaluate");
    }

    #[test]
    fn sweep_request_matches_direct_run_serial_and_parallel() {
        let direct = tiny_sweep("t").run().unwrap();
        for serial in [false, true] {
            let request = Request::sweep("s", tiny_sweep("t")).with_serial(serial);
            let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
            let Ok(Payload::Sweep(results)) = &response.result else {
                panic!("expected sweep payload")
            };
            assert_eq!(results, &direct, "serial={serial}");
            assert_eq!(response.perf.serial, serial);
        }
    }

    #[test]
    fn stream_request_matches_direct_run() {
        let spec = msfu_core::StreamSpec::new("t")
            .with_horizon(500)
            .server(FactoryConfig::single_level(2), 1)
            .class(msfu_core::JobClass::new("c", Strategy::linear()))
            .with_schedulers(&["fifo"])
            .with_eval_cache(false);
        let direct = spec.clone().run().unwrap();
        let request = Request::stream("s", spec);
        let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
        let Ok(Payload::Stream(report)) = response.result else {
            panic!("expected stream payload")
        };
        assert_eq!(*report, direct);
        assert_eq!(response.kind, "stream");
    }

    #[test]
    fn errors_carry_stable_codes() {
        let request = Request::evaluate(
            "bad",
            FactoryConfig::new(0, 1),
            Strategy::linear(),
            EvaluationConfig::default(),
        );
        let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
        let Err(error) = response.result else {
            panic!("zero-capacity factory must fail")
        };
        assert_eq!(error.code, "E_FACTORY_ZERO_CAPACITY");

        let request = Request::evaluate(
            "bad",
            FactoryConfig::single_level(2),
            Strategy::new("no_such_mapper", msfu_layout::MapperParams::new()),
            EvaluationConfig::default(),
        );
        let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
        assert_eq!(response.result.unwrap_err().code, "E_UNKNOWN_STRATEGY");
    }

    #[test]
    fn pre_cancelled_sweep_returns_empty_partial_results() {
        let handle = JobHandle::new();
        handle.cancel();
        let request = Request::sweep("c", tiny_sweep("t"));
        let response = Service::new().run(&request, &handle, &NoProgress);
        assert!(response.cancelled);
        let Ok(Payload::Sweep(results)) = &response.result else {
            panic!("cancelled sweep still responds ok")
        };
        assert!(results.rows.is_empty());
    }

    #[test]
    fn past_deadline_interrupts_like_a_cancel() {
        let request = Request::sweep("d", tiny_sweep("t")).with_deadline_ms(0);
        let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
        assert!(response.cancelled);
    }
}
