//! The stable, machine-readable error-code table of the service protocol.
//!
//! Every failure a job can produce — protocol-level (malformed request,
//! version mismatch) or pipeline-level (any [`CoreError`] variant, including
//! the wrapped [`DistillError`], [`LayoutError`] and [`SimError`] variants)
//! — maps to exactly one string code from [`ALL_ERROR_CODES`]. Codes are
//! part of the wire contract: clients branch on them, so **renaming or
//! removing a code is a breaking protocol change**. The golden test at the
//! bottom of this module pins the complete list; any drift fails it.
//!
//! [`DistillError`]: msfu_distill::DistillError
//! [`LayoutError`]: msfu_layout::LayoutError
//! [`SimError`]: msfu_sim::SimError

use msfu_core::CoreError;
use msfu_distill::DistillError;
use msfu_layout::LayoutError;
use msfu_sim::SimError;

/// Protocol-level code: the request line was not valid JSON or lacked
/// required fields.
pub const E_REQUEST_PARSE: &str = "E_REQUEST_PARSE";
/// Protocol-level code: the request's `protocol_version` is not one this
/// server speaks.
pub const E_PROTOCOL_VERSION: &str = "E_PROTOCOL_VERSION";
/// A sweep/search specification or evaluate payload could not be decoded.
pub const E_SPEC_PARSE: &str = "E_SPEC_PARSE";
/// A streaming-workload specification could not be decoded or failed
/// validation.
pub const E_STREAM_SPEC: &str = "E_STREAM_SPEC";
/// A stream job named a scheduler that is not registered.
pub const E_UNKNOWN_SCHEDULER: &str = "E_UNKNOWN_SCHEDULER";
/// Fallback for pipeline errors introduced after this build (the wrapped
/// error enums are `#[non_exhaustive]`).
pub const E_INTERNAL: &str = "E_INTERNAL";
/// A cluster worker returned a payload the coordinator could not decode, or
/// failed with a code this build does not recognise.
pub const E_REMOTE: &str = "E_REMOTE";
/// A cluster worker process (or thread) exited before completing its shard
/// and the shard could not be re-dispatched (no workers left).
pub const E_WORKER_LOST: &str = "E_WORKER_LOST";
/// One shard kept hitting worker faults (deaths, hangs past the shard
/// timeout, garbled responses) until its re-dispatch budget was spent; the
/// supervisor fails the job typed rather than loop forever.
pub const E_SHARD_RETRY_EXHAUSTED: &str = "E_SHARD_RETRY_EXHAUSTED";

/// Every code the service can emit, sorted. The golden test below asserts
/// this exact list, so adding a code is an additive protocol change reviewed
/// here, and renaming one is caught as a breaking change.
pub const ALL_ERROR_CODES: &[&str] = &[
    "E_CIRCUIT",
    "E_DUPLICATE_STRATEGY",
    "E_FACTORY_CAPACITY_NOT_A_POWER",
    "E_FACTORY_INVALID_PORT_SWAP",
    "E_FACTORY_TOO_LARGE",
    "E_FACTORY_ZERO_CAPACITY",
    "E_FACTORY_ZERO_LEVELS",
    "E_INTERNAL",
    "E_INVALID_STRATEGY_PARAM",
    "E_LAYOUT_CELL_OCCUPIED",
    "E_LAYOUT_GRID_TOO_SMALL",
    "E_LAYOUT_OUT_OF_BOUNDS",
    "E_LAYOUT_UNMAPPED_QUBIT",
    "E_LAYOUT_UNSUPPORTED_FACTORY",
    "E_PROTOCOL_VERSION",
    "E_REMOTE",
    "E_REQUEST_PARSE",
    "E_SHARD_RETRY_EXHAUSTED",
    "E_SIM_CYCLE_LIMIT",
    "E_SIM_EMPTY_GRID",
    "E_SIM_UNMAPPED_QUBIT",
    "E_SPEC_PARSE",
    "E_STREAM_SPEC",
    "E_UNKNOWN_SCHEDULER",
    "E_UNKNOWN_STRATEGY",
    "E_WORKER_LOST",
];

/// The stable code for a pipeline error.
pub fn error_code(error: &CoreError) -> &'static str {
    match error {
        CoreError::Spec { .. } => E_SPEC_PARSE,
        CoreError::StreamSpec { .. } => E_STREAM_SPEC,
        CoreError::UnknownScheduler { .. } => E_UNKNOWN_SCHEDULER,
        CoreError::Distill(e) => distill_code(e),
        CoreError::Layout(e) => layout_code(e),
        CoreError::Sim(e) => sim_code(e),
        // A remote worker's failure keeps its original identity when the
        // code is one this build speaks (so a clustered run reports the same
        // code a serial run would), and degrades to E_REMOTE otherwise.
        CoreError::Remote { code, .. } => ALL_ERROR_CODES
            .iter()
            .find(|known| **known == code.as_str())
            .copied()
            .unwrap_or(E_REMOTE),
        _ => E_INTERNAL,
    }
}

fn distill_code(error: &DistillError) -> &'static str {
    match error {
        DistillError::ZeroCapacity => "E_FACTORY_ZERO_CAPACITY",
        DistillError::ZeroLevels => "E_FACTORY_ZERO_LEVELS",
        DistillError::CapacityNotAPower { .. } => "E_FACTORY_CAPACITY_NOT_A_POWER",
        DistillError::TooLarge { .. } => "E_FACTORY_TOO_LARGE",
        DistillError::InvalidPortSwap => "E_FACTORY_INVALID_PORT_SWAP",
        DistillError::Circuit(_) => "E_CIRCUIT",
        _ => E_INTERNAL,
    }
}

fn layout_code(error: &LayoutError) -> &'static str {
    match error {
        LayoutError::CellOccupied { .. } => "E_LAYOUT_CELL_OCCUPIED",
        LayoutError::OutOfBounds { .. } => "E_LAYOUT_OUT_OF_BOUNDS",
        LayoutError::GridTooSmall { .. } => "E_LAYOUT_GRID_TOO_SMALL",
        LayoutError::UnsupportedFactory { .. } => "E_LAYOUT_UNSUPPORTED_FACTORY",
        LayoutError::Unmapped { .. } => "E_LAYOUT_UNMAPPED_QUBIT",
        LayoutError::UnknownMapper { .. } => "E_UNKNOWN_STRATEGY",
        LayoutError::DuplicateMapper { .. } => "E_DUPLICATE_STRATEGY",
        LayoutError::InvalidMapperParam { .. } => "E_INVALID_STRATEGY_PARAM",
        _ => E_INTERNAL,
    }
}

fn sim_code(error: &SimError) -> &'static str {
    match error {
        SimError::UnmappedQubit { .. } => "E_SIM_UNMAPPED_QUBIT",
        SimError::CycleLimitExceeded { .. } => "E_SIM_CYCLE_LIMIT",
        SimError::EmptyGrid => "E_SIM_EMPTY_GRID",
        _ => E_INTERNAL,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_circuit::QubitId;

    /// One constructed error per reachable variant, paired with its expected
    /// code. Kept exhaustive by hand; the golden test cross-checks that every
    /// code this table produces is in [`ALL_ERROR_CODES`] and vice versa.
    fn variant_fixtures() -> Vec<(CoreError, &'static str)> {
        vec![
            (CoreError::Spec { reason: "x".into() }, "E_SPEC_PARSE"),
            (
                CoreError::StreamSpec { reason: "x".into() },
                "E_STREAM_SPEC",
            ),
            (
                CoreError::UnknownScheduler {
                    name: "x".into(),
                    known: vec!["fifo".into()],
                },
                "E_UNKNOWN_SCHEDULER",
            ),
            (
                CoreError::Distill(DistillError::ZeroCapacity),
                "E_FACTORY_ZERO_CAPACITY",
            ),
            (
                CoreError::Distill(DistillError::ZeroLevels),
                "E_FACTORY_ZERO_LEVELS",
            ),
            (
                CoreError::Distill(DistillError::CapacityNotAPower {
                    capacity: 5,
                    levels: 2,
                }),
                "E_FACTORY_CAPACITY_NOT_A_POWER",
            ),
            (
                CoreError::Distill(DistillError::TooLarge {
                    qubits: 10,
                    limit: 5,
                }),
                "E_FACTORY_TOO_LARGE",
            ),
            (
                CoreError::Distill(DistillError::InvalidPortSwap),
                "E_FACTORY_INVALID_PORT_SWAP",
            ),
            (
                CoreError::Distill(DistillError::Circuit(
                    msfu_circuit::CircuitError::EmptyTargets,
                )),
                "E_CIRCUIT",
            ),
            (
                CoreError::Layout(LayoutError::CellOccupied {
                    cell: msfu_layout::Coord::new(0, 0),
                    occupant: QubitId::new(0),
                    claimant: QubitId::new(1),
                }),
                "E_LAYOUT_CELL_OCCUPIED",
            ),
            (
                CoreError::Layout(LayoutError::OutOfBounds {
                    cell: msfu_layout::Coord::new(9, 9),
                    width: 2,
                    height: 2,
                }),
                "E_LAYOUT_OUT_OF_BOUNDS",
            ),
            (
                CoreError::Layout(LayoutError::GridTooSmall {
                    qubits: 9,
                    cells: 4,
                }),
                "E_LAYOUT_GRID_TOO_SMALL",
            ),
            (
                CoreError::Layout(LayoutError::UnsupportedFactory { reason: "x".into() }),
                "E_LAYOUT_UNSUPPORTED_FACTORY",
            ),
            (
                CoreError::Layout(LayoutError::Unmapped {
                    qubit: QubitId::new(0),
                }),
                "E_LAYOUT_UNMAPPED_QUBIT",
            ),
            (
                CoreError::Layout(LayoutError::UnknownMapper {
                    name: "x".into(),
                    known: vec![],
                }),
                "E_UNKNOWN_STRATEGY",
            ),
            (
                CoreError::Layout(LayoutError::DuplicateMapper { name: "x".into() }),
                "E_DUPLICATE_STRATEGY",
            ),
            (
                CoreError::Layout(LayoutError::InvalidMapperParam {
                    mapper: "x".into(),
                    reason: "y".into(),
                }),
                "E_INVALID_STRATEGY_PARAM",
            ),
            (
                CoreError::Sim(SimError::UnmappedQubit {
                    qubit: QubitId::new(0),
                }),
                "E_SIM_UNMAPPED_QUBIT",
            ),
            (
                CoreError::Sim(SimError::CycleLimitExceeded { limit: 1 }),
                "E_SIM_CYCLE_LIMIT",
            ),
            (CoreError::Sim(SimError::EmptyGrid), "E_SIM_EMPTY_GRID"),
            (
                CoreError::Remote {
                    code: "E_WORKER_LOST".into(),
                    message: "worker exited".into(),
                },
                "E_WORKER_LOST",
            ),
            (
                CoreError::Remote {
                    code: "E_SIM_CYCLE_LIMIT".into(),
                    message: "relayed".into(),
                },
                "E_SIM_CYCLE_LIMIT",
            ),
            (
                // The supervisor's typed exhaustion error survives a relay
                // hop unchanged (a search fold reports it this way).
                CoreError::Remote {
                    code: "E_SHARD_RETRY_EXHAUSTED".into(),
                    message: "shard 0 hit 2 worker fault(s)".into(),
                },
                "E_SHARD_RETRY_EXHAUSTED",
            ),
            (
                CoreError::Remote {
                    code: "E_FROM_THE_FUTURE".into(),
                    message: "unknown remote code".into(),
                },
                "E_REMOTE",
            ),
        ]
    }

    #[test]
    fn every_variant_maps_to_its_code() {
        for (error, code) in variant_fixtures() {
            assert_eq!(error_code(&error), code, "{error}");
        }
    }

    /// The golden list: the exact set of codes the protocol speaks. A rename
    /// or removal fails here and must be treated as a breaking protocol
    /// change; an addition must extend [`ALL_ERROR_CODES`] (keeping it
    /// sorted) in the same commit.
    #[test]
    fn golden_code_list_is_exact() {
        let expected = [
            "E_CIRCUIT",
            "E_DUPLICATE_STRATEGY",
            "E_FACTORY_CAPACITY_NOT_A_POWER",
            "E_FACTORY_INVALID_PORT_SWAP",
            "E_FACTORY_TOO_LARGE",
            "E_FACTORY_ZERO_CAPACITY",
            "E_FACTORY_ZERO_LEVELS",
            "E_INTERNAL",
            "E_INVALID_STRATEGY_PARAM",
            "E_LAYOUT_CELL_OCCUPIED",
            "E_LAYOUT_GRID_TOO_SMALL",
            "E_LAYOUT_OUT_OF_BOUNDS",
            "E_LAYOUT_UNMAPPED_QUBIT",
            "E_LAYOUT_UNSUPPORTED_FACTORY",
            "E_PROTOCOL_VERSION",
            "E_REMOTE",
            "E_REQUEST_PARSE",
            "E_SHARD_RETRY_EXHAUSTED",
            "E_SIM_CYCLE_LIMIT",
            "E_SIM_EMPTY_GRID",
            "E_SIM_UNMAPPED_QUBIT",
            "E_SPEC_PARSE",
            "E_STREAM_SPEC",
            "E_UNKNOWN_SCHEDULER",
            "E_UNKNOWN_STRATEGY",
            "E_WORKER_LOST",
        ];
        assert_eq!(ALL_ERROR_CODES, &expected, "the code table drifted");
    }

    #[test]
    fn code_list_is_sorted_and_unique() {
        let mut sorted = ALL_ERROR_CODES.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted, ALL_ERROR_CODES, "codes must be sorted and unique");
    }

    #[test]
    fn every_mapped_code_is_in_the_golden_list() {
        for (error, _) in variant_fixtures() {
            let code = error_code(&error);
            assert!(
                ALL_ERROR_CODES.contains(&code),
                "{code} missing from ALL_ERROR_CODES"
            );
        }
        for code in [
            E_REQUEST_PARSE,
            E_PROTOCOL_VERSION,
            E_SPEC_PARSE,
            E_INTERNAL,
        ] {
            assert!(ALL_ERROR_CODES.contains(&code));
        }
    }

    #[test]
    fn every_golden_code_is_reachable() {
        // Codes reachable from pipeline variants plus the protocol-level
        // ones; nothing in the golden list may be dead.
        let mut reachable: Vec<&str> = variant_fixtures()
            .iter()
            .map(|(e, _)| error_code(e))
            .collect();
        reachable.extend([E_REQUEST_PARSE, E_PROTOCOL_VERSION, E_INTERNAL]);
        for code in ALL_ERROR_CODES {
            assert!(
                reachable.contains(code),
                "{code} is in the golden list but unreachable"
            );
        }
    }
}
