//! The wire contract: versioned requests, typed responses, stable error
//! codes.
//!
//! A request is one JSON object (one line of a `serve` session, or a whole
//! file for `msfu run`):
//!
//! ```json
//! {"protocol_version": 1, "id": "job-1", "kind": "sweep", "serial": false,
//!  "sweep": { ...a SweepSpec document (msfu_core::spec)... }}
//! {"protocol_version": 1, "id": "job-2", "kind": "search",
//!  "search": { ...a SearchSpec document... }}
//! {"protocol_version": 1, "id": "job-5", "kind": "stream",
//!  "stream": { ...a StreamSpec document (msfu_core::stream)... }}
//! {"protocol_version": 1, "id": "job-3", "kind": "evaluate",
//!  "factory": {"k": 2}, "strategy": {"strategy": "linear"},
//!  "eval": {"routing": "dimension-ordered"}}
//! {"protocol_version": 1, "cancel": "job-1"}
//! ```
//!
//! Optional request fields: `id` (defaults to `"job"`), `serial` (run the
//! job sequentially; results are identical), `deadline_ms` (stop the job
//! cooperatively after this many milliseconds, like a cancel).
//!
//! A response is one JSON object tagged `"type": "response"`, carrying the
//! echoed `id`, a `status` of `"ok"` or `"error"`, a `cancelled` flag (a
//! cancelled sweep/search still reports the rows/candidates it completed —
//! partial results, not an error), a `perf` stamp, and either the payload
//! under `result` or a stable machine-readable error under `error`:
//!
//! ```json
//! {"type": "response", "protocol_version": 1, "id": "job-1", "kind": "sweep",
//!  "status": "ok", "cancelled": false, "perf": {"wall_seconds": 1.5, "serial": false},
//!  "result": {"results": {"name": "fig7", "rows": [ ... ]}}}
//! {"type": "response", "protocol_version": 1, "id": "job-9", "kind": "sweep",
//!  "status": "error", "cancelled": false, "perf": {"wall_seconds": 0.0, "serial": false},
//!  "error": {"code": "E_UNKNOWN_STRATEGY", "message": "no mapping strategy ..."}}
//! ```
//!
//! Error `code`s come from the pinned table in [`crate::error_code`](mod@crate::error_code);
//! clients branch on codes, never on messages.

use std::fmt;

use serde_json::Value;

use msfu_core::spec::{eval_from_json, factory_from_json, strategy_from_json};
use msfu_core::{CoreError, Evaluation, EvaluationConfig, SearchReport, SearchSpec, Strategy};
use msfu_core::{StreamReport, StreamSpec, SweepResults, SweepSpec};
use msfu_distill::FactoryConfig;

use crate::error_code::{error_code, E_PROTOCOL_VERSION, E_REQUEST_PARSE};

/// The protocol version this build speaks. Requests carrying any other
/// version are rejected with [`E_PROTOCOL_VERSION`] — a typed error
/// response, never a panic — so old clients fail loudly and newer servers
/// can dispatch on it.
pub const PROTOCOL_VERSION: u64 = 1;

/// A machine-readable job failure: a stable `code` from
/// [`crate::error_code::ALL_ERROR_CODES`] plus a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// The stable error code (part of the wire contract).
    pub code: &'static str,
    /// Human-readable explanation (not part of the stable contract).
    pub message: String,
}

impl ServiceError {
    /// Creates an error.
    pub fn new(code: &'static str, message: impl Into<String>) -> Self {
        ServiceError {
            code,
            message: message.into(),
        }
    }

    /// Wraps a pipeline error under its stable code.
    pub fn from_core(error: &CoreError) -> Self {
        ServiceError::new(error_code(error), error.to_string())
    }

    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("code".to_string(), Value::Str(self.code.to_string())),
            ("message".to_string(), Value::Str(self.message.clone())),
        ])
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.code, self.message)
    }
}

impl std::error::Error for ServiceError {}

/// A request that could not be decoded, with the `id` recovered from the
/// document (when there was one) so the error response can still be
/// correlated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestError {
    /// The request id, when the document carried a readable one.
    pub id: Option<String>,
    /// What went wrong.
    pub error: ServiceError,
}

/// The work a request asks for.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Job {
    /// One factory configuration × one strategy → one [`Evaluation`].
    Evaluate {
        /// The factory to build.
        factory: FactoryConfig,
        /// The mapping strategy to apply.
        strategy: Strategy,
        /// Evaluation configuration.
        eval: EvaluationConfig,
    },
    /// A declarative sweep grid.
    Sweep {
        /// The sweep to run.
        spec: SweepSpec,
    },
    /// A portfolio search.
    Search {
        /// The search to run.
        spec: SearchSpec,
    },
    /// A streaming workload over a fixed factory fleet.
    Stream {
        /// The stream to run.
        spec: StreamSpec,
    },
}

impl Job {
    /// The job's wire name (`evaluate`, `sweep`, `search` or `stream`).
    pub fn kind(&self) -> &'static str {
        match self {
            Job::Evaluate { .. } => "evaluate",
            Job::Sweep { .. } => "sweep",
            Job::Search { .. } => "search",
            Job::Stream { .. } => "stream",
        }
    }
}

/// A versioned job request.
///
/// `#[non_exhaustive]`: construct with [`Request::evaluate`],
/// [`Request::sweep`], [`Request::search`] or [`Request::stream`] and refine
/// with the `with_*` builders, so the protocol can grow fields without a
/// semver break.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Request {
    /// The protocol version the client speaks (constructors pin
    /// [`PROTOCOL_VERSION`]).
    pub protocol_version: u64,
    /// Caller-chosen correlation id, echoed on every progress event and on
    /// the response.
    pub id: String,
    /// Run the job sequentially on one thread (results are identical to a
    /// parallel run).
    pub serial: bool,
    /// Cooperative deadline in milliseconds from job start; past it the job
    /// stops at the next batch boundary exactly like a cancellation.
    pub deadline_ms: Option<u64>,
    /// The work to do.
    pub job: Job,
}

impl Request {
    fn new(id: impl Into<String>, job: Job) -> Self {
        Request {
            protocol_version: PROTOCOL_VERSION,
            id: id.into(),
            serial: false,
            deadline_ms: None,
            job,
        }
    }

    /// An `evaluate` request.
    pub fn evaluate(
        id: impl Into<String>,
        factory: FactoryConfig,
        strategy: Strategy,
        eval: EvaluationConfig,
    ) -> Self {
        Request::new(
            id,
            Job::Evaluate {
                factory,
                strategy,
                eval,
            },
        )
    }

    /// A `sweep` request.
    pub fn sweep(id: impl Into<String>, spec: SweepSpec) -> Self {
        Request::new(id, Job::Sweep { spec })
    }

    /// A `search` request.
    pub fn search(id: impl Into<String>, spec: SearchSpec) -> Self {
        Request::new(id, Job::Search { spec })
    }

    /// A `stream` request.
    pub fn stream(id: impl Into<String>, spec: StreamSpec) -> Self {
        Request::new(id, Job::Stream { spec })
    }

    /// Requests serial execution (builder style).
    pub fn with_serial(mut self, serial: bool) -> Self {
        self.serial = serial;
        self
    }

    /// Attaches a cooperative deadline in milliseconds (builder style).
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Decodes a request document.
    ///
    /// # Errors
    ///
    /// Returns [`E_REQUEST_PARSE`] for malformed documents,
    /// [`E_PROTOCOL_VERSION`] for a version this build does not speak, and
    /// spec-level codes for undecodable payloads.
    pub fn from_json(text: &str) -> Result<Self, RequestError> {
        match SessionLine::from_json(text)? {
            SessionLine::Request(request) => Ok(*request),
            SessionLine::Cancel(id) => Err(RequestError {
                id: Some(id),
                error: ServiceError::new(
                    E_REQUEST_PARSE,
                    "a cancel line is only valid inside a serve session",
                ),
            }),
        }
    }
}

/// One line of a `serve` session: a job request, or a cancellation of an
/// earlier one.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SessionLine {
    /// A job request.
    Request(Box<Request>),
    /// `{"cancel": "<id>"}` — cancel the in-flight or queued job with that
    /// id.
    Cancel(String),
}

impl SessionLine {
    /// Decodes one session line.
    ///
    /// # Errors
    ///
    /// As [`Request::from_json`].
    pub fn from_json(text: &str) -> Result<Self, RequestError> {
        let parse_err = |message: String| RequestError {
            id: None,
            error: ServiceError::new(E_REQUEST_PARSE, message),
        };
        let root = serde_json::from_str(text)
            .map_err(|e| parse_err(format!("request is not valid JSON: {e}")))?;
        let Value::Object(entries) = &root else {
            return Err(parse_err("request must be a JSON object".to_string()));
        };
        // Recover the id early so even version/shape errors correlate.
        let id = match root.get("id") {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let fail = |code: &'static str, message: String| RequestError {
            id: id.clone(),
            error: ServiceError::new(code, message),
        };

        let version = root
            .get("protocol_version")
            .ok_or_else(|| fail(E_REQUEST_PARSE, "missing `protocol_version`".to_string()))?
            .as_u64()
            .ok_or_else(|| {
                fail(
                    E_REQUEST_PARSE,
                    "`protocol_version` must be a non-negative integer".to_string(),
                )
            })?;
        if version != PROTOCOL_VERSION {
            return Err(fail(
                E_PROTOCOL_VERSION,
                format!("this server speaks protocol version {PROTOCOL_VERSION}, not {version}"),
            ));
        }

        if let Some(cancel) = root.get("cancel") {
            let Value::Str(target) = cancel else {
                return Err(fail(
                    E_REQUEST_PARSE,
                    "`cancel` must be the id of the job to cancel".to_string(),
                ));
            };
            for (key, _) in entries {
                if !matches!(key.as_str(), "protocol_version" | "cancel") {
                    return Err(fail(
                        E_REQUEST_PARSE,
                        format!("unknown field `{key}` on a cancel line"),
                    ));
                }
            }
            return Ok(SessionLine::Cancel(target.clone()));
        }

        let kind = match root.get("kind") {
            Some(Value::Str(s)) => s.clone(),
            Some(_) => return Err(fail(E_REQUEST_PARSE, "`kind` must be a string".to_string())),
            None => {
                return Err(fail(
                    E_REQUEST_PARSE,
                    "missing `kind` (evaluate, sweep, search or stream)".to_string(),
                ))
            }
        };
        let serial = match root.get("serial") {
            None => false,
            Some(Value::Bool(b)) => *b,
            Some(_) => {
                return Err(fail(
                    E_REQUEST_PARSE,
                    "`serial` must be a boolean".to_string(),
                ))
            }
        };
        let deadline_ms = match root.get("deadline_ms") {
            None => None,
            Some(v) => Some(v.as_u64().ok_or_else(|| {
                fail(
                    E_REQUEST_PARSE,
                    "`deadline_ms` must be a non-negative integer".to_string(),
                )
            })?),
        };
        let payload_keys: &[&str] = match kind.as_str() {
            "evaluate" => &["factory", "strategy", "eval"],
            "sweep" => &["sweep"],
            "search" => &["search"],
            "stream" => &["stream"],
            other => {
                return Err(fail(
                    E_REQUEST_PARSE,
                    format!("unknown kind `{other}` (expected evaluate, sweep, search or stream)"),
                ))
            }
        };
        for (key, _) in entries {
            let known = matches!(
                key.as_str(),
                "protocol_version" | "id" | "kind" | "serial" | "deadline_ms"
            ) || payload_keys.contains(&key.as_str());
            if !known {
                return Err(fail(E_REQUEST_PARSE, format!("unknown field `{key}`")));
            }
        }
        let spec_fail = |id: &Option<String>, e: &CoreError| RequestError {
            id: id.clone(),
            error: ServiceError::from_core(e),
        };
        let job = match kind.as_str() {
            "evaluate" => {
                let factory = root
                    .get("factory")
                    .ok_or_else(|| fail(E_REQUEST_PARSE, "evaluate: missing `factory`".into()))
                    .and_then(|v| factory_from_json(v).map_err(|e| spec_fail(&id, &e)))?;
                let strategy = root
                    .get("strategy")
                    .ok_or_else(|| fail(E_REQUEST_PARSE, "evaluate: missing `strategy`".into()))
                    .and_then(|v| strategy_from_json(v).map_err(|e| spec_fail(&id, &e)))?;
                let eval = match root.get("eval") {
                    Some(v) => eval_from_json(v).map_err(|e| spec_fail(&id, &e))?,
                    None => EvaluationConfig::default(),
                };
                Job::Evaluate {
                    factory,
                    strategy,
                    eval,
                }
            }
            "sweep" => {
                let spec = root
                    .get("sweep")
                    .ok_or_else(|| fail(E_REQUEST_PARSE, "sweep: missing `sweep` spec".into()))
                    .and_then(|v| SweepSpec::from_value(v).map_err(|e| spec_fail(&id, &e)))?;
                Job::Sweep { spec }
            }
            "search" => {
                let spec = root
                    .get("search")
                    .ok_or_else(|| fail(E_REQUEST_PARSE, "search: missing `search` spec".into()))
                    .and_then(|v| SearchSpec::from_value(v).map_err(|e| spec_fail(&id, &e)))?;
                Job::Search { spec }
            }
            "stream" => {
                let spec = root
                    .get("stream")
                    .ok_or_else(|| fail(E_REQUEST_PARSE, "stream: missing `stream` spec".into()))
                    .and_then(|v| StreamSpec::from_value(v).map_err(|e| spec_fail(&id, &e)))?;
                Job::Stream { spec }
            }
            _ => unreachable!("kind validated above"),
        };
        let mut request = Request::new(id.unwrap_or_else(|| "job".to_string()), job);
        request.serial = serial;
        request.deadline_ms = deadline_ms;
        Ok(SessionLine::Request(Box::new(request)))
    }
}

/// Cluster execution stamp of one coordinated (multi-worker) job, rendered
/// under `perf.cluster` of the response. All fields are observability-only:
/// the merged rows/incumbents are byte-identical to serial regardless.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct ClusterPerf {
    /// The communicator backend (`"local-threads"` or `"child-process"`).
    pub backend: &'static str,
    /// Worker pool size the job was coordinated over.
    pub workers: usize,
    /// Shard dispatches that completed (re-dispatches included).
    pub shards: u64,
    /// Shards re-dispatched after a worker fault (death, hang past the
    /// shard timeout, or an undecodable response).
    pub shards_retried: u64,
    /// Replacement workers the supervisor spawned after deaths.
    pub workers_respawned: u64,
    /// Shards the coordinator finished in-process after the whole pool was
    /// lost with the respawn budget spent.
    pub shards_local_fallback: u64,
    /// Mean fraction of the pool busy over the job's wall time:
    /// `Σ shard wall / (job wall × workers)`.
    pub occupancy: f64,
    /// Coordinator overhead: job wall time minus ideal parallel shard time
    /// (`Σ shard wall / workers`), clamped at zero.
    pub coordinator_seconds: f64,
}

impl ClusterPerf {
    fn to_value(self) -> Value {
        Value::Object(vec![
            ("backend".to_string(), Value::Str(self.backend.to_string())),
            ("workers".to_string(), Value::UInt(self.workers as u64)),
            ("shards".to_string(), Value::UInt(self.shards)),
            (
                "shards_retried".to_string(),
                Value::UInt(self.shards_retried),
            ),
            (
                "workers_respawned".to_string(),
                Value::UInt(self.workers_respawned),
            ),
            (
                "shards_local_fallback".to_string(),
                Value::UInt(self.shards_local_fallback),
            ),
            ("occupancy".to_string(), Value::Float(self.occupancy)),
            (
                "coordinator_seconds".to_string(),
                Value::Float(self.coordinator_seconds),
            ),
        ])
    }
}

/// Wall-time stamp of one served job.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct ResponsePerf {
    /// End-to-end job wall time in seconds.
    pub wall_seconds: f64,
    /// Whether the job ran serially.
    pub serial: bool,
    /// Cluster stamp, present when the job was coordinated across workers.
    pub cluster: Option<ClusterPerf>,
}

impl ResponsePerf {
    /// Creates a stamp.
    pub fn new(wall_seconds: f64, serial: bool) -> Self {
        ResponsePerf {
            wall_seconds,
            serial,
            cluster: None,
        }
    }

    /// Attaches a cluster stamp (builder style).
    pub fn with_cluster(mut self, cluster: ClusterPerf) -> Self {
        self.cluster = Some(cluster);
        self
    }

    pub(crate) fn to_value(self) -> Value {
        let mut entries = vec![
            ("wall_seconds".to_string(), Value::Float(self.wall_seconds)),
            ("serial".to_string(), Value::Bool(self.serial)),
        ];
        if let Some(cluster) = self.cluster {
            entries.push(("cluster".to_string(), cluster.to_value()));
        }
        Value::Object(entries)
    }
}

/// The result payload of a successful job.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Payload {
    /// Outcome of an `evaluate` job.
    Evaluate(Box<Evaluation>),
    /// Outcome of a `sweep` job (all rows, or the completed prefix when the
    /// response is marked cancelled).
    Sweep(SweepResults),
    /// Outcome of a `search` job.
    Search(Box<SearchReport>),
    /// Outcome of a `stream` job (all scheduler runs, or the completed
    /// prefix when the response is marked cancelled).
    Stream(Box<StreamReport>),
}

impl Payload {
    /// The name of the executed spec, when the payload has one (used to name
    /// `BENCH_<name>.json` reports written by a serve session).
    pub fn name(&self) -> Option<&str> {
        match self {
            Payload::Evaluate(_) => None,
            Payload::Sweep(results) => Some(&results.name),
            Payload::Search(report) => Some(&report.name),
            Payload::Stream(report) => Some(&report.name),
        }
    }

    fn to_value(&self) -> Value {
        use serde::Serialize;
        match self {
            Payload::Evaluate(evaluation) => {
                Value::Object(vec![("evaluation".to_string(), evaluation.to_value())])
            }
            Payload::Sweep(results) => {
                Value::Object(vec![("results".to_string(), results.to_value())])
            }
            Payload::Search(report) => Value::Object(vec![
                ("search".to_string(), report.to_value()),
                // The search's entry-best/incumbent rows in sweep shape, so
                // search responses plug into the same report tooling
                // (bench-diff gating) as sweep responses.
                ("results".to_string(), report.to_sweep_results().to_value()),
            ]),
            Payload::Stream(report) => Value::Object(vec![
                ("stream".to_string(), report.to_value()),
                // The stream's p50/p99/throughput rows in sweep shape, for
                // the same bench-diff gating as sweeps and searches.
                ("results".to_string(), report.to_sweep_results().to_value()),
            ]),
        }
    }
}

/// The typed outcome of one request.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct Response {
    /// The request's id, echoed.
    pub id: String,
    /// The request's job kind (`"unknown"` when the request itself could not
    /// be decoded).
    pub kind: &'static str,
    /// `true` when the job was cancelled (or hit its deadline) at a batch
    /// boundary; the payload then holds the partial results completed so
    /// far.
    pub cancelled: bool,
    /// Wall-time stamp.
    pub perf: ResponsePerf,
    /// The payload, or a stable machine-readable error.
    pub result: Result<Payload, ServiceError>,
}

impl Response {
    /// Creates a response.
    pub fn new(
        id: impl Into<String>,
        kind: &'static str,
        cancelled: bool,
        perf: ResponsePerf,
        result: Result<Payload, ServiceError>,
    ) -> Self {
        Response {
            id: id.into(),
            kind,
            cancelled,
            perf,
            result,
        }
    }

    /// The error response for a request that never became a job.
    pub fn for_request_error(error: RequestError) -> Self {
        Response::new(
            error.id.unwrap_or_else(|| "?".to_string()),
            "unknown",
            false,
            ResponsePerf::new(0.0, false),
            Err(error.error),
        )
    }

    /// The name of the executed spec, when the payload carries one.
    pub fn name(&self) -> Option<&str> {
        self.result.as_ref().ok().and_then(Payload::name)
    }

    /// Renders the response as its wire JSON object.
    pub fn to_value(&self) -> Value {
        let mut entries = vec![
            ("type".to_string(), Value::Str("response".to_string())),
            (
                "protocol_version".to_string(),
                Value::UInt(PROTOCOL_VERSION),
            ),
            ("id".to_string(), Value::Str(self.id.clone())),
            ("kind".to_string(), Value::Str(self.kind.to_string())),
            (
                "status".to_string(),
                Value::Str(if self.result.is_ok() { "ok" } else { "error" }.to_string()),
            ),
            ("cancelled".to_string(), Value::Bool(self.cancelled)),
            ("perf".to_string(), self.perf.to_value()),
        ];
        match &self.result {
            Ok(payload) => entries.push(("result".to_string(), payload.to_value())),
            Err(error) => entries.push(("error".to_string(), error.to_value())),
        }
        Value::Object(entries)
    }

    /// Renders the response as one compact JSON line (the serve wire form).
    pub fn to_json(&self) -> String {
        serde_json::to_string(&self.to_value()).expect("response serialises")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_code::E_SPEC_PARSE;

    #[test]
    fn request_round_trips_each_kind() {
        let evaluate = Request::from_json(
            r#"{"protocol_version": 1, "id": "e", "kind": "evaluate",
                "factory": {"k": 2}, "strategy": {"strategy": "linear"}}"#,
        )
        .unwrap();
        assert_eq!(evaluate.id, "e");
        assert_eq!(evaluate.job.kind(), "evaluate");

        let sweep = Request::from_json(
            r#"{"protocol_version": 1, "kind": "sweep", "serial": true,
                "sweep": {"name": "s", "points": [
                    {"label": "p", "factory": {"k": 2},
                     "strategy": {"strategy": "linear"}}]}}"#,
        )
        .unwrap();
        assert_eq!(sweep.id, "job", "id defaults");
        assert!(sweep.serial);
        let Job::Sweep { spec } = &sweep.job else {
            panic!("expected a sweep job")
        };
        assert_eq!(spec.points.len(), 1);

        let search = Request::from_json(
            r#"{"protocol_version": 1, "id": "s", "kind": "search", "deadline_ms": 250,
                "search": {"name": "x", "factory": {"k": 2},
                           "portfolio": [{"strategy": {"strategy": "linear"},
                                          "seeded": false}]}}"#,
        )
        .unwrap();
        assert_eq!(search.deadline_ms, Some(250));
        assert_eq!(search.job.kind(), "search");

        let stream = Request::from_json(
            r#"{"protocol_version": 1, "id": "t", "kind": "stream",
                "stream": {"name": "quick", "horizon": 100,
                           "arrivals": {"process": "poisson", "rate": 0.01},
                           "fleet": [{"factory": {"k": 2}, "count": 1}],
                           "classes": [{"name": "c",
                                        "strategy": {"strategy": "linear"}}],
                           "schedulers": ["fifo"]}}"#,
        )
        .unwrap();
        assert_eq!(stream.id, "t");
        assert_eq!(stream.job.kind(), "stream");
        let Job::Stream { spec } = &stream.job else {
            panic!("expected a stream job")
        };
        assert_eq!(spec.schedulers, vec!["fifo"]);
    }

    #[test]
    fn version_mismatch_is_a_typed_error_not_a_panic() {
        let err = Request::from_json(r#"{"protocol_version": 99, "id": "v", "kind": "sweep"}"#)
            .expect_err("version 99 must be rejected");
        assert_eq!(err.error.code, E_PROTOCOL_VERSION);
        assert_eq!(err.id.as_deref(), Some("v"), "id still correlates");
        assert!(err.error.message.contains("99"), "{}", err.error.message);
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (bad, needle) in [
            ("not json", "JSON"),
            (r#"[1, 2]"#, "object"),
            (r#"{"id": "x"}"#, "protocol_version"),
            (r#"{"protocol_version": 1}"#, "kind"),
            (r#"{"protocol_version": 1, "kind": "dance"}"#, "dance"),
            (
                r#"{"protocol_version": 1, "kind": "sweep", "bogus": 1}"#,
                "bogus",
            ),
            (r#"{"protocol_version": 1, "kind": "sweep"}"#, "sweep"),
        ] {
            let err = Request::from_json(bad).expect_err("must fail");
            assert_eq!(err.error.code, E_REQUEST_PARSE, "{bad}");
            assert!(err.error.message.contains(needle), "{bad} -> {}", err.error);
        }
    }

    #[test]
    fn spec_errors_surface_spec_codes() {
        let err = Request::from_json(
            r#"{"protocol_version": 1, "kind": "sweep", "sweep": {"eval": {}}}"#,
        )
        .expect_err("spec without a name must fail");
        assert_eq!(err.error.code, E_SPEC_PARSE);
    }

    #[test]
    fn cancel_lines_parse_only_in_sessions() {
        let line = SessionLine::from_json(r#"{"protocol_version": 1, "cancel": "job-1"}"#).unwrap();
        assert_eq!(line, SessionLine::Cancel("job-1".to_string()));
        let err = Request::from_json(r#"{"protocol_version": 1, "cancel": "job-1"}"#)
            .expect_err("cancel is not a standalone request");
        assert_eq!(err.error.code, E_REQUEST_PARSE);
    }

    #[test]
    fn response_renders_status_error_and_cancelled() {
        let ok = Response::new(
            "a",
            "sweep",
            true,
            ResponsePerf::new(1.0, false),
            Ok(Payload::Sweep(SweepResults {
                name: "s".to_string(),
                rows: Vec::new(),
            })),
        );
        let value = ok.to_value();
        assert_eq!(value.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(
            value.get("cancelled"),
            Some(&Value::Bool(true)),
            "partial results carry cancelled: true"
        );
        assert!(value.get("result").is_some());
        assert_eq!(ok.name(), Some("s"));

        let err = Response::new(
            "b",
            "search",
            false,
            ResponsePerf::new(0.0, true),
            Err(ServiceError::new(E_REQUEST_PARSE, "boom")),
        );
        let value = err.to_value();
        assert_eq!(value.get("status").and_then(Value::as_str), Some("error"));
        assert_eq!(
            value
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some(E_REQUEST_PARSE)
        );
        assert!(err.to_json().starts_with('{'));
    }
}
