//! The JSON-lines session loop behind `msfu serve`.
//!
//! One process serves any number of jobs: requests arrive as NDJSON on the
//! input, progress events and responses leave interleaved as NDJSON on the
//! output. Jobs execute one at a time in arrival order (so outputs are
//! deterministic for a deterministic session), but the input is drained by a
//! dedicated reader thread the whole time — which is what makes
//! `{"cancel": "<id>"}` lines take effect *mid-job*: the reader cancels the
//! in-flight job's token directly, and the job stops at its next batch
//! boundary with partial results.
//!
//! Per-thread simulator engines are reused across every job of the session
//! (see `msfu_core::evaluate`), so arenas are allocated once per worker, not
//! once per job.
//!
//! **Flush guarantee.** Every NDJSON line — progress event or response — is
//! flushed to the output the moment it is written. A client reading the
//! pipe sees each line as soon as its event happens; buffering never delays
//! or batches session output. This holds for coordinated (`workers > 0`)
//! sessions too: merged progress lines flush as worker events arrive.
//!
//! With [`ServeOptions::workers`] set, sweep and search jobs are sharded
//! across a worker pool (see [`crate::cluster`]) that is connected lazily on
//! the first such job and reused for the rest of the session; merged
//! results are byte-identical to a single-process run.

use std::collections::{HashMap, HashSet};
use std::io::{BufRead, Write};
use std::path::PathBuf;
use std::sync::{mpsc, Arc, Mutex};
use std::thread;

use serde_json::Value;

use msfu_core::CancelToken;

use crate::cluster::{self, Cluster, ClusterBackend, Supervision};
use crate::error_code::E_WORKER_LOST;
use crate::faults::{FaultPlan, WorkerFaultSpec};
use crate::ndjson::NdjsonSink;
use crate::protocol::{Job, Payload, Request, RequestError, Response, ResponsePerf, ServiceError};
use crate::service::{JobHandle, Service};

/// Options of a serve session.
#[derive(Debug, Clone, Default)]
#[non_exhaustive]
pub struct ServeOptions {
    /// Force every job to run serially (a request's own `serial` flag still
    /// applies when this is off).
    pub serial: bool,
    /// When set, each successful sweep/search/stream response is
    /// additionally written as `BENCH_<name>.json` under this directory, in
    /// the shape the `bench-diff` regression gate compares.
    pub bench_dir: Option<PathBuf>,
    /// Coordinate sweep/search jobs across this many workers (`0` = run
    /// everything in-process, no pool). The pool connects lazily on the
    /// first coordinated job and is reused for the rest of the session.
    pub workers: usize,
    /// How coordinated jobs reach their workers (ignored when `workers` is
    /// `0`).
    pub backend: ClusterBackend,
    /// Deterministic fault injection for robustness tests: which worker
    /// ranks crash, stall, or garble a response, and which cache segments
    /// are corrupted at session start (see [`FaultPlan`]). Each worker
    /// receives its slice of the plan when the pool connects; cache
    /// corruption is applied to [`ServeOptions::cache_dir`] before the
    /// first request runs.
    pub fault_plan: Option<FaultPlan>,
    /// This process's *own* worker-side faults, when it is a worker of a
    /// supervised pool (the coordinator sets this from the plan slice for
    /// the worker's rank): exit without responding, stall, or garble a
    /// response at a declared request index. Empty = behave normally.
    pub worker_fault: WorkerFaultSpec,
    /// Supervision: how long a dispatched shard may stay in flight before
    /// its worker is declared hung and the shard re-dispatched (`None` =
    /// only a job deadline bounds the wait).
    pub shard_timeout_ms: Option<u64>,
    /// Supervision: how many replacement workers the coordinator may spawn
    /// over the session after deaths (`None` = one per configured worker).
    pub max_respawns: Option<u32>,
    /// Supervision: how many times one shard may be re-dispatched after
    /// worker faults before the job fails typed with
    /// `E_SHARD_RETRY_EXHAUSTED` (`None` = the default budget of 3).
    pub retry_budget: Option<u32>,
    /// Session-default persistent cache directory: sweep/search/stream
    /// requests that carry no `"cache_dir"` of their own inherit this one, so every
    /// job of the session (and, with `workers > 0`, every worker shard)
    /// loads from and appends to one shared evaluation-cache tier. A
    /// request's explicit `cache_dir` wins over the session default.
    pub cache_dir: Option<PathBuf>,
}

impl ServeOptions {
    /// Creates the default options.
    pub fn new() -> Self {
        ServeOptions::default()
    }

    /// Forces serial execution (builder style).
    pub fn with_serial(mut self, serial: bool) -> Self {
        self.serial = serial;
        self
    }

    /// Writes `BENCH_<name>.json` reports under `dir` (builder style).
    pub fn with_bench_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.bench_dir = Some(dir.into());
        self
    }

    /// Coordinates sweeps/searches across `workers` workers (builder style).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Selects the worker communicator backend (builder style).
    pub fn with_backend(mut self, backend: ClusterBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Injects a crash fault: `rank` exits without responding upon
    /// receiving its `after_jobs + 1`-th request (builder style). Thin
    /// alias for adding a crash to the session's [`FaultPlan`]; prefer
    /// [`ServeOptions::with_fault_plan`] for anything richer.
    pub fn with_fault(mut self, rank: usize, after_jobs: usize) -> Self {
        let plan = self.fault_plan.take().unwrap_or_default();
        self.fault_plan = Some(plan.with_crash(rank, after_jobs));
        self
    }

    /// Sets the session's deterministic fault plan (builder style).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Sets this process's own worker-side faults (builder style); used by
    /// the communicator when spawning pool workers.
    pub fn with_worker_fault(mut self, fault: WorkerFaultSpec) -> Self {
        self.worker_fault = fault;
        self
    }

    /// Bounds how long a dispatched shard may stay in flight (builder
    /// style); see [`ServeOptions::shard_timeout_ms`].
    pub fn with_shard_timeout_ms(mut self, timeout_ms: u64) -> Self {
        self.shard_timeout_ms = Some(timeout_ms);
        self
    }

    /// Caps worker respawns over the session (builder style); see
    /// [`ServeOptions::max_respawns`].
    pub fn with_max_respawns(mut self, max_respawns: u32) -> Self {
        self.max_respawns = Some(max_respawns);
        self
    }

    /// Caps re-dispatches per shard (builder style); see
    /// [`ServeOptions::retry_budget`].
    pub fn with_retry_budget(mut self, retry_budget: u32) -> Self {
        self.retry_budget = Some(retry_budget);
        self
    }

    /// The supervision configuration these options describe.
    fn supervision(&self) -> Supervision {
        let defaults = Supervision::default();
        Supervision {
            shard_timeout: self.shard_timeout_ms.map(std::time::Duration::from_millis),
            // Default respawn budget: one replacement per configured worker —
            // enough to survive every original rank crashing once.
            max_respawns: self
                .max_respawns
                .unwrap_or_else(|| u32::try_from(self.workers).unwrap_or(u32::MAX)),
            retry_budget: self.retry_budget.unwrap_or(defaults.retry_budget),
            ..defaults
        }
    }

    /// Sets the session-default persistent cache directory (builder style);
    /// see [`ServeOptions::cache_dir`].
    pub fn with_cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }
}

/// What a completed serve session did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub struct ServeSummary {
    /// Responses written (one per request line, malformed ones included).
    pub responses: usize,
    /// Responses with `status: "error"`.
    pub errors: usize,
    /// Responses with `cancelled: true`.
    pub cancelled: usize,
}

/// Runs one serve session: NDJSON requests on `input` until EOF, interleaved
/// progress events and responses on `output`.
///
/// Every line gets exactly one response, in arrival order; malformed lines
/// and unsupported protocol versions produce typed error responses and the
/// session keeps serving. A `{"cancel": "<id>"}` line cancels the job with
/// that id whether it is currently running or still queued.
///
/// Every output line is flushed as soon as it is written (see the module
/// docs): a client reading the pipe observes each progress event and
/// response the moment it happens, never delayed by buffering.
///
/// # Errors
///
/// Returns an error only when writing to `output` fails; job failures are
/// responses, not errors.
///
/// `input` is `'static` because the reader runs on a *detached* thread: if
/// writing a response fails while the input is still open (a client that
/// tore down only the output pipe), `serve` returns the error immediately
/// instead of joining a reader that is blocked on a read forever.
pub fn serve<R, W>(input: R, output: W, options: &ServeOptions) -> std::io::Result<ServeSummary>
where
    R: BufRead + Send + 'static,
    W: Write,
{
    let out = Mutex::new(output);
    let service = Service::new();
    let state = Arc::new(Mutex::new(SessionState::default()));
    let (tx, rx) = mpsc::channel::<Result<Box<Request>, RequestError>>();
    let mut summary = ServeSummary::default();

    let reader_state = Arc::clone(&state);
    thread::spawn(move || {
        for line in input.lines() {
            let Ok(line) = line else { break };
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            match crate::protocol::SessionLine::from_json(line) {
                Ok(crate::protocol::SessionLine::Cancel(id)) => {
                    reader_state
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .cancel(&id);
                }
                Ok(crate::protocol::SessionLine::Request(request)) => {
                    if tx.send(Ok(request)).is_err() {
                        break;
                    }
                }
                Err(error) => {
                    if tx.send(Err(error)).is_err() {
                        break;
                    }
                }
            }
        }
    });

    if let (Some(plan), Some(dir)) = (&options.fault_plan, &options.cache_dir) {
        // Deterministic cache sabotage happens before the first request, so
        // the session exercises the quarantine/recovery path on open.
        match plan.apply_cache_corruption(dir) {
            Ok(damaged) => {
                for path in &damaged {
                    eprintln!("[msfu faults] corrupted cache segment {}", path.display());
                }
            }
            Err(message) => {
                eprintln!("[msfu faults] cache corruption not applied: {message}");
            }
        }
    }

    let mut cluster: Option<Cluster> = None;
    let mut jobs_received = 0usize;
    for message in rx {
        let mut garble = false;
        let response = match message {
            Err(error) => Response::for_request_error(error),
            Ok(mut request) => {
                let job_index = jobs_received;
                if options
                    .worker_fault
                    .exit_after_jobs
                    .is_some_and(|limit| job_index >= limit)
                {
                    // Simulated crash (worker-fault hook): exit without
                    // responding, so from the client's point of view this
                    // session died mid-job.
                    break;
                }
                if let Some(after) = options.worker_fault.stall_after_jobs {
                    if job_index >= after {
                        // Simulated hang: sleep *before* serving, so the
                        // coordinator sees a request that never answers
                        // within its shard timeout. The stall is sticky —
                        // every request from `after` onwards hangs — because
                        // a wedged worker does not recover by itself.
                        thread::sleep(std::time::Duration::from_millis(
                            options.worker_fault.stall_duration_ms,
                        ));
                    }
                }
                // Garbled-response fault: serve the job normally, then
                // replace the response line with undecodable output below.
                garble = options.worker_fault.corrupt_after_jobs == Some(job_index);
                jobs_received += 1;
                request.serial = request.serial || options.serial;
                if let Some(dir) = &options.cache_dir {
                    // Session default only: a request's own cache_dir wins.
                    match &mut request.job {
                        Job::Sweep { spec } if spec.cache_dir.is_none() => {
                            spec.cache_dir = Some(dir.clone());
                        }
                        Job::Search { spec } if spec.cache_dir.is_none() => {
                            spec.cache_dir = Some(dir.clone());
                        }
                        Job::Stream { spec } if spec.cache_dir.is_none() => {
                            spec.cache_dir = Some(dir.clone());
                        }
                        _ => {}
                    }
                }
                let handle = JobHandle::new();
                state
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .start(&request.id, &handle);
                let clustered = options.workers > 0
                    && matches!(request.job, Job::Sweep { .. } | Job::Search { .. });
                let response = if clustered {
                    match ensure_cluster(&mut cluster, options) {
                        Ok(pool) => cluster::run_clustered(pool, &request, &handle, Some(&out)),
                        Err(error) => Response::new(
                            request.id.clone(),
                            request.job.kind(),
                            false,
                            ResponsePerf::new(0.0, request.serial),
                            Err(ServiceError::new(
                                E_WORKER_LOST,
                                format!("cannot connect the worker pool: {error}"),
                            )),
                        ),
                    }
                } else {
                    let sink = NdjsonSink::new(&request.id, &out);
                    service.run(&request, &handle, &sink)
                };
                state
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .finish(&request.id);
                response
            }
        };
        summary.responses += 1;
        if response.result.is_err() {
            summary.errors += 1;
        }
        if response.cancelled {
            summary.cancelled += 1;
        }
        if let Some(dir) = &options.bench_dir {
            write_bench_report(dir, &response)?;
        }
        let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
        if garble {
            // Corrupt-response fault: a syntactically valid JSON line with a
            // status no coordinator understands — the supervisor must treat
            // it as a retryable worker fault, not a typed job error.
            let line = Value::Object(vec![
                ("type".to_string(), Value::Str("response".to_string())),
                ("id".to_string(), Value::Str(response.id.clone())),
                ("status".to_string(), Value::Str("garbled".to_string())),
            ]);
            let text =
                serde_json::to_string(&line).map_err(|e| std::io::Error::other(e.to_string()))?;
            writeln!(out, "{text}")?;
        } else {
            writeln!(out, "{}", response.to_json())?;
        }
        out.flush()?;
    }
    Ok(summary)
}

/// Connects the session's worker pool on first use, reusing it afterwards.
fn ensure_cluster<'a>(
    cluster: &'a mut Option<Cluster>,
    options: &ServeOptions,
) -> std::io::Result<&'a mut Cluster> {
    if cluster.is_none() {
        let pool = Cluster::connect(
            &options.backend,
            options.workers,
            options.fault_plan.as_ref(),
        )?;
        *cluster = Some(pool.with_supervision(options.supervision()));
    }
    Ok(cluster.as_mut().expect("pool was just connected"))
}

/// Cancellation bookkeeping of one session, under a single lock so the
/// reader thread and the job loop always observe a consistent picture.
#[derive(Default)]
struct SessionState {
    /// The running job's cancel token, by id.
    inflight: HashMap<String, CancelToken>,
    /// Cancels for jobs that have not started yet.
    precancelled: HashSet<String>,
    /// Ids whose jobs already completed. A cancel arriving after its job
    /// finished is dropped — it must not leak forward onto a later job that
    /// happens to reuse the id (ids default to "job" when omitted).
    served: HashSet<String>,
}

impl SessionState {
    /// Handles one `{"cancel": id}` line from the reader thread.
    fn cancel(&mut self, id: &str) {
        if let Some(token) = self.inflight.get(id) {
            token.cancel();
        } else if !self.served.contains(id) {
            self.precancelled.insert(id.to_string());
        }
    }

    /// Registers a job about to run, applying any pending pre-cancel.
    fn start(&mut self, id: &str, handle: &JobHandle) {
        self.served.remove(id);
        self.inflight.insert(id.to_string(), handle.token().clone());
        if self.precancelled.remove(id) {
            handle.cancel();
        }
    }

    /// Marks a job's id as served. Later jobs may reuse the id (it leaves
    /// `served` again the moment one starts).
    fn finish(&mut self, id: &str) {
        self.inflight.remove(id);
        self.served.insert(id.to_string());
    }
}

/// Writes a completed sweep/search/stream response as `BENCH_<name>.json` in the
/// `{name, perf, results}` shape the `bench-diff` gate compares (searches
/// additionally carry their full report under `search`). Cancelled or
/// unnamed responses are skipped — a partial sweep must never overwrite a
/// complete baseline candidate.
fn write_bench_report(dir: &std::path::Path, response: &Response) -> std::io::Result<()> {
    let (Some(name), Ok(payload)) = (response.name(), &response.result) else {
        return Ok(());
    };
    if response.cancelled {
        return Ok(());
    }
    use serde::Serialize;
    let mut entries = vec![
        ("name".to_string(), Value::Str(name.to_string())),
        // The full perf stamp, `perf.cluster` included for coordinated
        // jobs; bench-diff gates rows and the named wall-time paths only,
        // so extra perf observability never trips the gate.
        ("perf".to_string(), response.perf.to_value()),
    ];
    match payload {
        Payload::Sweep(results) => {
            entries.push(("results".to_string(), results.to_value()));
        }
        Payload::Search(report) => {
            entries.push(("results".to_string(), report.to_sweep_results().to_value()));
            entries.push(("search".to_string(), report.to_value()));
        }
        Payload::Stream(report) => {
            entries.push(("results".to_string(), report.to_sweep_results().to_value()));
            entries.push(("stream".to_string(), report.to_value()));
        }
        _ => return Ok(()),
    }
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("BENCH_{name}.json"));
    let text = serde_json::to_string_pretty(&Value::Object(entries))
        .map_err(|e| std::io::Error::other(e.to_string()))?;
    std::fs::write(path, text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(lines: &'static str) -> (ServeSummary, Vec<Value>) {
        let mut output: Vec<u8> = Vec::new();
        let summary = serve(lines.as_bytes(), &mut output, &ServeOptions::new()).unwrap();
        let text = String::from_utf8(output).unwrap();
        let values = text
            .lines()
            .map(|l| serde_json::from_str(l).expect("every output line is JSON"))
            .collect();
        (summary, values)
    }

    fn responses(values: &[Value]) -> Vec<&Value> {
        values
            .iter()
            .filter(|v| v.get("type").and_then(Value::as_str) == Some("response"))
            .collect()
    }

    #[test]
    fn two_requests_one_process_in_order() {
        let lines = concat!(
            r#"{"protocol_version": 1, "id": "a", "kind": "evaluate", "factory": {"k": 2}, "strategy": {"strategy": "linear"}}"#,
            "\n",
            r#"{"protocol_version": 1, "id": "b", "kind": "sweep", "sweep": {"name": "s", "points": [{"label": "p", "factory": {"k": 2}, "strategy": {"strategy": "linear"}}]}}"#,
            "\n",
        );
        let (summary, values) = session(lines);
        assert_eq!(summary.responses, 2);
        assert_eq!(summary.errors, 0);
        let responses = responses(&values);
        assert_eq!(responses.len(), 2);
        assert_eq!(responses[0].get("id").and_then(Value::as_str), Some("a"));
        assert_eq!(responses[1].get("id").and_then(Value::as_str), Some("b"));
        for r in responses {
            assert_eq!(r.get("status").and_then(Value::as_str), Some("ok"));
        }
        // The sweep's progress events precede its response.
        let first_progress = values
            .iter()
            .position(|v| v.get("type").and_then(Value::as_str) == Some("progress"))
            .expect("sweep emitted progress");
        let sweep_response = values
            .iter()
            .position(|v| {
                v.get("type").and_then(Value::as_str) == Some("response")
                    && v.get("id").and_then(Value::as_str) == Some("b")
            })
            .unwrap();
        assert!(first_progress < sweep_response);
    }

    #[test]
    fn malformed_and_mismatched_lines_get_error_responses_and_serving_continues() {
        let lines = concat!(
            "this is not json\n",
            r#"{"protocol_version": 99, "id": "old", "kind": "sweep"}"#,
            "\n",
            r#"{"protocol_version": 1, "id": "ok", "kind": "evaluate", "factory": {"k": 2}, "strategy": {"strategy": "linear"}}"#,
            "\n",
        );
        let (summary, values) = session(lines);
        assert_eq!(summary.responses, 3);
        assert_eq!(summary.errors, 2);
        let responses = responses(&values);
        let code = |r: &Value| {
            r.get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str)
                .map(str::to_string)
        };
        assert_eq!(code(responses[0]).as_deref(), Some("E_REQUEST_PARSE"));
        assert_eq!(code(responses[1]).as_deref(), Some("E_PROTOCOL_VERSION"));
        assert_eq!(
            responses[1].get("id").and_then(Value::as_str),
            Some("old"),
            "version errors still correlate by id"
        );
        assert_eq!(
            responses[2].get("status").and_then(Value::as_str),
            Some("ok"),
            "the session keeps serving after errors"
        );
    }

    #[test]
    fn session_state_drops_late_cancels_but_honours_pending_and_inflight_ones() {
        let mut state = SessionState::default();

        // Late cancel: the job already finished — dropped, and a later job
        // reusing the id starts uncancelled.
        let first = JobHandle::new();
        state.start("a", &first);
        state.finish("a");
        state.cancel("a");
        let reused = JobHandle::new();
        state.start("a", &reused);
        assert!(
            !reused.is_cancelled(),
            "late cancel leaked onto a reused id"
        );
        state.finish("a");

        // Pending cancel: the job has not started yet — applied at start.
        state.cancel("b");
        let queued = JobHandle::new();
        state.start("b", &queued);
        assert!(queued.is_cancelled());
        state.finish("b");

        // In-flight cancel: hits the running job's token directly.
        let running = JobHandle::new();
        state.start("c", &running);
        state.cancel("c");
        assert!(running.is_cancelled());
    }

    #[test]
    fn a_late_cancel_does_not_leak_onto_a_reused_id() {
        // The cancel arrives after job "a" completed (the reader processes
        // lines in order, and job 1's response precedes line 2's parse only
        // in wall time — but the session file order guarantees the first
        // request is consumed first and the cancel refers to it). A second
        // job reusing the id must run normally, not come back cancelled.
        let lines = concat!(
            r#"{"protocol_version": 1, "id": "a", "kind": "evaluate", "factory": {"k": 2}, "strategy": {"strategy": "linear"}}"#,
            "\n",
            r#"{"protocol_version": 1, "cancel": "a"}"#,
            "\n",
            r#"{"protocol_version": 1, "id": "a", "kind": "sweep", "sweep": {"name": "s", "points": [{"label": "p", "factory": {"k": 2}, "strategy": {"strategy": "linear"}}]}}"#,
            "\n",
        );
        // The race between "job 1 finishes" and "cancel parsed" is real, so
        // only assert the invariant that must hold either way: the second
        // job is a *different* job, and a cancel consumed by job 1 (or
        // dropped as late) must leave it untouched with its full row.
        let (summary, values) = session(lines);
        assert_eq!(summary.responses, 2);
        let second = responses(&values)[1];
        assert_eq!(second.get("status").and_then(Value::as_str), Some("ok"));
        let rows = second
            .get("result")
            .and_then(|r| r.get("results"))
            .and_then(|r| r.get("rows"))
            .and_then(Value::as_array)
            .unwrap();
        assert_eq!(rows.len(), 1, "late cancel must not skip the reused id");
    }

    #[test]
    fn queued_cancel_takes_effect_before_the_job_starts() {
        // The cancel line is read by the reader thread (possibly) before the
        // sweep starts; either way the sweep must come back cancelled with a
        // row prefix, because the cancel precedes it in the session.
        let lines = concat!(
            r#"{"protocol_version": 1, "cancel": "victim"}"#,
            "\n",
            r#"{"protocol_version": 1, "id": "victim", "kind": "sweep", "sweep": {"name": "s", "points": [{"label": "p", "factory": {"k": 2}, "strategy": {"strategy": "linear"}}]}}"#,
            "\n",
        );
        let (summary, values) = session(lines);
        assert_eq!(summary.responses, 1);
        assert_eq!(summary.cancelled, 1);
        let response = responses(&values)[0];
        assert_eq!(response.get("status").and_then(Value::as_str), Some("ok"));
        assert_eq!(response.get("cancelled"), Some(&Value::Bool(true)));
        let rows = response
            .get("result")
            .and_then(|r| r.get("results"))
            .and_then(|r| r.get("rows"))
            .and_then(Value::as_array)
            .expect("partial results present");
        assert!(rows.is_empty(), "pre-cancelled job evaluates nothing");
    }
}
