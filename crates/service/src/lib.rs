//! # msfu-service
//!
//! The versioned request/response façade of the MSFU reproduction: one
//! stable, machine-readable surface through which every capability of the
//! pipeline — single evaluations, declarative sweeps, portfolio searches,
//! streaming workloads — is reachable by a server, a queue worker or a
//! non-Rust client.
//!
//! * [`protocol`] — the wire contract: a versioned [`Request`] (one of
//!   `evaluate` / `sweep` / `search` / `stream`, payloads reusing the JSON
//!   spec formats of `msfu_core`), a typed [`Response`] carrying the result payload,
//!   a perf stamp and [stable error codes](mod@error_code), and the NDJSON
//!   progress-event encoding.
//! * [`Service`] — executes one request against the pipeline, streaming
//!   [`msfu_core::ProgressEvent`]s to a caller-supplied sink and honouring a
//!   [`JobHandle`]'s cooperative cancellation and deadline between batches.
//! * [`serve`] — a JSON-lines session loop (requests in, interleaved
//!   progress events and responses out) serving any number of jobs from one
//!   process, with per-worker simulator engines reused across jobs and
//!   in-flight jobs cancellable by a `{"cancel": <id>}` line.
//! * [`cluster`] — the supervised multi-worker coordinator behind
//!   `--workers N`: sweeps/searches shard deterministically across a pool
//!   of worker serve sessions (in-process threads or child processes), with
//!   shard timeouts, bounded re-dispatch with backoff, worker respawn,
//!   in-process fallback when the whole pool is lost, cancellation fan-out,
//!   and a merge that keeps results byte-identical to a single-process run.
//! * [`faults`] — seeded, JSON-declarable fault injection ([`FaultPlan`]):
//!   worker crashes, stalls, garbled responses and cache corruption, used
//!   by the robustness tests and the CI chaos soak to drive the recovery
//!   paths deterministically.
//!
//! # Example
//!
//! ```
//! use msfu_core::{EvaluationConfig, NoProgress, Strategy};
//! use msfu_distill::FactoryConfig;
//! use msfu_service::{JobHandle, Request, Service};
//!
//! let request = Request::evaluate(
//!     "demo",
//!     FactoryConfig::single_level(2),
//!     Strategy::linear(),
//!     EvaluationConfig::default(),
//! );
//! let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
//! assert!(response.result.is_ok());
//! println!("{}", response.to_json());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod error_code;
pub mod faults;
pub mod ndjson;
pub mod protocol;
mod serve;
mod service;

pub use cluster::{
    run_clustered, shard_ranges, Cluster, ClusterBackend, Supervision, WorkerEvent, WorkerFault,
};
pub use error_code::{error_code, ALL_ERROR_CODES};
pub use faults::{FaultPlan, WorkerFaultSpec};
pub use ndjson::NdjsonSink;
pub use protocol::{
    ClusterPerf, Job, Payload, Request, RequestError, Response, ResponsePerf, ServiceError,
    SessionLine, PROTOCOL_VERSION,
};
pub use serve::{serve, ServeOptions, ServeSummary};
pub use service::{JobHandle, Service};
