//! Deterministic shard planning.
//!
//! A plan is a pure function of `(total, workers)` — never of runtime timing
//! or of which workers happen to be alive — so the *set* of shards (and
//! therefore the merged output) is identical run to run for a given
//! `--workers` value. Scheduling (which worker runs which shard, in what
//! order) is free to vary; merging happens in shard order, not completion
//! order.

use std::ops::Range;

/// Splits `0..total` into at most `workers` contiguous, non-empty,
/// balanced ranges covering every index exactly once.
///
/// The first `total % shards` ranges get one extra element, so range sizes
/// differ by at most one. With more workers than items, each item gets its
/// own one-element range (never an empty one). `total == 0` or
/// `workers == 0` yields no ranges.
pub fn shard_ranges(total: usize, workers: usize) -> Vec<Range<usize>> {
    if total == 0 || workers == 0 {
        return Vec::new();
    }
    let shards = workers.min(total);
    let base = total / shards;
    let extra = total % shards;
    let mut ranges = Vec::with_capacity(shards);
    let mut start = 0;
    for s in 0..shards {
        let len = base + usize::from(s < extra);
        ranges.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, total);
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every plan covers `0..total` exactly once, in order, with no empty
    /// shard and balanced sizes.
    fn check(total: usize, workers: usize) -> Vec<Range<usize>> {
        let ranges = shard_ranges(total, workers);
        let mut next = 0;
        for r in &ranges {
            assert_eq!(r.start, next, "contiguous coverage ({total}/{workers})");
            assert!(!r.is_empty(), "no empty shards ({total}/{workers})");
            next = r.end;
        }
        assert_eq!(next, total, "full coverage ({total}/{workers})");
        if let (Some(max), Some(min)) = (
            ranges.iter().map(Range::len).max(),
            ranges.iter().map(Range::len).min(),
        ) {
            assert!(max - min <= 1, "balanced ({total}/{workers})");
        }
        ranges
    }

    #[test]
    fn plans_cover_balance_and_never_produce_empty_shards() {
        for total in 0..=17 {
            for workers in 1..=9 {
                check(total, workers);
            }
        }
    }

    #[test]
    fn plan_is_deterministic_and_depends_only_on_total_and_workers() {
        assert_eq!(shard_ranges(10, 3), shard_ranges(10, 3));
        assert_eq!(shard_ranges(10, 3), vec![0..4, 4..7, 7..10]);
        assert_eq!(shard_ranges(4, 2), vec![0..2, 2..4]);
    }

    #[test]
    fn more_workers_than_items_yields_one_item_shards() {
        assert_eq!(shard_ranges(3, 8), vec![0..1, 1..2, 2..3]);
    }

    #[test]
    fn degenerate_plans_are_empty() {
        assert!(shard_ranges(0, 4).is_empty());
        assert!(shard_ranges(4, 0).is_empty());
    }
}
