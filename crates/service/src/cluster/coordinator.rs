//! The coordinator: shard fan-out, deterministic merge, fault recovery.
//!
//! A coordinated job never changes *what* is computed — only *where*. The
//! shard plan is a pure function of the spec and the configured pool size
//! (see [`shard_ranges`]), each shard is an ordinary serve-protocol sweep
//! request a worker executes with the normal engine, and merging walks the
//! shards in plan order — so the merged rows, incumbents and error codes are
//! byte-identical to a serial run whatever order shards actually finish in,
//! and whichever workers they land on.
//!
//! Fault handling: a worker whose output closes mid-shard is marked dead and
//! its shard is re-dispatched to the next idle worker (`shards_retried` in
//! the response's `perf.cluster` stamp counts these). Only when *every*
//! worker is gone with work still queued does the job fail, with
//! [`E_WORKER_LOST`]. Cancellation and deadlines fan out: the coordinator
//! forwards a cancel line for every in-flight shard and skips the queued
//! ones, then merges the longest completed prefix exactly like a serial
//! cancelled run.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::ops::Range;
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use serde_json::Value;

use msfu_core::wire;
use msfu_core::{CoreError, ProgressEvent, ProgressSink, RunControl, SweepResults, SweepRow};
use msfu_core::{SearchSpec, SweepSpec};

use crate::cluster::comm::{self, ClusterBackend, WorkerEvent, WorkerFault, WorkerTx};
use crate::cluster::planner::shard_ranges;
use crate::error_code::{error_code, E_REMOTE, E_WORKER_LOST};
use crate::ndjson::progress_to_value;
use crate::protocol::{
    ClusterPerf, Job, Payload, Request, Response, ResponsePerf, ServiceError, PROTOCOL_VERSION,
};
use crate::service::{JobHandle, Service};

/// How long the event loop waits for worker output before re-checking
/// cancellation, deadlines and worker health.
const POLL_INTERVAL: Duration = Duration::from_millis(25);

/// A connected worker pool, reusable across the jobs of a serve session.
///
/// Workers are connected once and kept until the pool is dropped; a worker
/// that dies stays dead (its shards re-dispatch to the survivors), and the
/// shard *plan* always uses the configured pool size, so results do not
/// depend on which workers happen to be alive.
pub struct Cluster {
    workers: Vec<WorkerSlot>,
    events: mpsc::Receiver<WorkerEvent>,
    /// Keeps the event channel open even while no worker holds a sender, so
    /// `recv_timeout` reports timeouts, never disconnection.
    _keepalive: mpsc::Sender<WorkerEvent>,
    backend_name: &'static str,
}

struct WorkerSlot {
    tx: Box<dyn WorkerTx>,
    alive: bool,
    /// Index (into the current shard set) of the in-flight shard.
    busy: Option<usize>,
    busy_since: Option<Instant>,
}

impl Cluster {
    /// Connects a pool of `workers` workers (at least one) over `backend`.
    ///
    /// # Errors
    ///
    /// Fails when a child worker process cannot be spawned; the
    /// [`ClusterBackend::LocalThreads`] backend is infallible.
    pub fn connect(
        backend: &ClusterBackend,
        workers: usize,
        fault: Option<WorkerFault>,
    ) -> io::Result<Cluster> {
        let (tx, rx) = mpsc::channel();
        let txs = comm::connect(backend, workers.max(1), fault, &tx)?;
        Ok(Cluster {
            workers: txs
                .into_iter()
                .map(|tx| WorkerSlot {
                    tx,
                    alive: true,
                    busy: None,
                    busy_since: None,
                })
                .collect(),
            events: rx,
            _keepalive: tx,
            backend_name: backend.name(),
        })
    }

    /// The configured pool size (dead workers included — the shard plan
    /// never shrinks with the pool).
    pub fn world(&self) -> usize {
        self.workers.len()
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("backend", &self.backend_name)
            .field("workers", &self.workers.len())
            .field("alive", &self.workers.iter().filter(|w| w.alive).count())
            .finish()
    }
}

/// One planned shard: a sub-range of the job, as a ready-to-send request.
struct ShardSpec {
    id: String,
    range: Range<usize>,
    body: Value,
}

/// How one shard ended.
enum ShardDone {
    /// The worker responded with rows (possibly a cancelled partial prefix).
    Rows {
        rows: Vec<SweepRow>,
        cancelled: bool,
    },
    /// The worker responded with a typed error.
    Failed { code: String, message: String },
    /// The shard never completed: skipped after a cancel/deadline, or
    /// abandoned because every worker died.
    Skipped,
}

/// What the shard executor tells the caller as the job unfolds.
enum ShardSignal<'a> {
    /// A progress line from the shard's worker (verbatim, shard-local ids
    /// and indices).
    Progress(&'a Value),
    /// The shard finished.
    Done(&'a ShardDone),
}

/// Dispatch/occupancy counters accumulated across one job's shard sets.
#[derive(Default)]
struct ShardStats {
    dispatched: u64,
    retried: u64,
    busy_seconds: f64,
}

impl ShardStats {
    fn perf(&self, backend: &'static str, workers: usize, wall_seconds: f64) -> ClusterPerf {
        let pool = workers.max(1) as f64;
        let ideal = self.busy_seconds / pool;
        ClusterPerf {
            backend,
            workers,
            shards: self.dispatched,
            shards_retried: self.retried,
            occupancy: if wall_seconds > 0.0 {
                (self.busy_seconds / (wall_seconds * pool)).min(1.0)
            } else {
                0.0
            },
            coordinator_seconds: (wall_seconds - ideal).max(0.0),
        }
    }
}

/// Cancellation/deadline source of the job being coordinated.
struct Interrupt<'a> {
    handle: &'a JobHandle,
    deadline: Option<Instant>,
}

impl Interrupt<'_> {
    fn triggered(&self) -> bool {
        self.handle.is_cancelled() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Milliseconds left until the deadline (saturating at zero), if any.
    fn remaining_ms(&self) -> Option<u64> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()).as_millis() as u64)
    }
}

/// Executes one request against the pool, streaming merged progress lines
/// to `progress` (when given) and returning the merged response.
///
/// Sweeps are sharded directly; searches run their deterministic fold on
/// the coordinator and shard each candidate batch. `Evaluate` jobs are a
/// single bounded simulation — they run in-process, exactly like an
/// uncoordinated serve session would run them.
pub fn run_clustered<W: Write>(
    cluster: &mut Cluster,
    request: &Request,
    handle: &JobHandle,
    progress: Option<&Mutex<W>>,
) -> Response {
    let start = Instant::now();
    match &request.job {
        Job::Sweep { spec } => run_sweep(cluster, request, spec, handle, progress, start),
        Job::Search { spec } => run_search(cluster, request, spec, handle, progress, start),
        _ => {
            let sink = OptionalSink {
                id: &request.id,
                out: progress,
            };
            Service::new().run(request, handle, &sink)
        }
    }
}

fn run_sweep<W: Write>(
    cluster: &mut Cluster,
    request: &Request,
    spec: &SweepSpec,
    handle: &JobHandle,
    progress: Option<&Mutex<W>>,
    start: Instant,
) -> Response {
    let total = spec.points.len();
    let world = cluster.world();
    let backend = cluster.backend_name;
    let shards: Vec<ShardSpec> = shard_ranges(total, world)
        .into_iter()
        .enumerate()
        .map(|(k, range)| {
            let id = format!("{}#s{k}", request.id);
            let body = shard_request(
                &id,
                request.serial,
                wire::sweep_spec_to_value(&spec.slice(range.clone())),
            );
            ShardSpec { id, range, body }
        })
        .collect();
    let interrupt = Interrupt {
        handle,
        deadline: request
            .deadline_ms
            .map(|ms| start + Duration::from_millis(ms)),
    };
    let offsets: Vec<usize> = shards.iter().map(|s| s.range.start).collect();
    let mut stats = ShardStats::default();
    let mut completed = 0usize;
    let outcome = execute_shards(
        cluster,
        &shards,
        Some(&interrupt),
        &mut stats,
        |shard, signal| match signal {
            // Worker row events pass through with the parent id and the
            // global index/total. They appear as workers produce them, so
            // (unlike single-process runs) global index order is not
            // guaranteed across shards — each line is still exact.
            ShardSignal::Progress(value) => {
                if let Some(text) = patch_row_line(value, &request.id, offsets[shard], total) {
                    emit_line(progress, &text);
                }
            }
            // Worker batch events are dropped (their totals are
            // shard-local); the coordinator emits its own merged
            // `batch_finished` as each shard lands.
            ShardSignal::Done(done) => {
                if let ShardDone::Rows { rows, .. } = done {
                    completed += rows.len();
                    let event = ProgressEvent::BatchFinished {
                        name: &spec.name,
                        completed,
                        total,
                    };
                    if let Ok(text) = serde_json::to_string(&progress_to_value(&request.id, &event))
                    {
                        emit_line(progress, &text);
                    }
                }
            }
        },
    );

    let wall = start.elapsed().as_secs_f64();
    let perf =
        ResponsePerf::new(wall, request.serial).with_cluster(stats.perf(backend, world, wall));
    if let Some(message) = outcome.fatal {
        return Response::new(
            request.id.clone(),
            "sweep",
            false,
            perf,
            Err(ServiceError::new(E_WORKER_LOST, message)),
        );
    }
    // The lowest failed shard wins: it contains the lowest failing point,
    // which is the error a serial run would have stopped at.
    for done in &outcome.done {
        if let ShardDone::Failed { code, message } = done {
            let error = ServiceError::from_core(&CoreError::Remote {
                code: code.clone(),
                message: message.clone(),
            });
            return Response::new(request.id.clone(), "sweep", false, perf, Err(error));
        }
    }
    // Merge in shard (= point) order, stopping at the first incomplete
    // shard so a cancelled job reports a clean prefix, like a serial run.
    let mut rows: Vec<SweepRow> = Vec::with_capacity(total);
    let mut cancelled = outcome.interrupted;
    for done in outcome.done {
        match done {
            ShardDone::Rows {
                rows: mut shard_rows,
                cancelled: shard_cancelled,
            } => {
                rows.append(&mut shard_rows);
                if shard_cancelled {
                    cancelled = true;
                    break;
                }
            }
            ShardDone::Skipped => {
                cancelled = true;
                break;
            }
            ShardDone::Failed { .. } => unreachable!("failed shards returned above"),
        }
    }
    Response::new(
        request.id.clone(),
        "sweep",
        cancelled,
        perf,
        Ok(Payload::Sweep(SweepResults {
            name: spec.name.clone(),
            rows,
        })),
    )
}

fn run_search<W: Write>(
    cluster: &mut Cluster,
    request: &Request,
    spec: &SearchSpec,
    handle: &JobHandle,
    progress: Option<&Mutex<W>>,
    start: Instant,
) -> Response {
    let world = cluster.world();
    let backend = cluster.backend_name;
    let sink = OptionalSink {
        id: &request.id,
        out: progress,
    };
    let mut ctrl = RunControl::default()
        .with_progress(&sink)
        .with_cancel(handle.token());
    if let Some(ms) = request.deadline_ms {
        ctrl = ctrl.with_deadline(start + Duration::from_millis(ms));
    }
    let mut stats = ShardStats::default();
    let mut batch_seq = 0usize;
    // The deterministic fold (candidate stream, incumbents, stop reasons)
    // runs right here on the coordinator; only the batch evaluations fan
    // out, as ordinary sweep requests over the batch's candidates. That is
    // exactly the serial fold with a different evaluator, so the report is
    // byte-identical to a serial run.
    let result = spec.run_with_evaluator(&ctrl, |batch| {
        batch_seq += 1;
        let shards: Vec<ShardSpec> = shard_ranges(batch.len(), world)
            .into_iter()
            .enumerate()
            .map(|(k, range)| {
                let mut sub = SweepSpec::new(spec.name.clone(), spec.eval);
                sub.use_eval_cache = spec.use_eval_cache;
                sub.cache_dir = spec.cache_dir.clone();
                for (g, strategy) in &batch[range.clone()] {
                    sub = sub.point(format!("c{g}"), spec.factory, strategy.clone());
                }
                let id = format!("{}#b{batch_seq}s{k}", request.id);
                let body = shard_request(&id, request.serial, wire::sweep_spec_to_value(&sub));
                ShardSpec { id, range, body }
            })
            .collect();
        // No interrupt here: like a serial run, an in-flight batch always
        // completes — the fold honours cancellation and deadlines between
        // batches. Sub-request progress stays internal (shard-local labels
        // would only confuse a client); search progress comes from the fold.
        let outcome = execute_shards(cluster, &shards, None, &mut stats, |_, _| {});
        if let Some(message) = outcome.fatal {
            return Err(CoreError::Remote {
                code: E_WORKER_LOST.to_string(),
                message,
            });
        }
        // Exactly one evaluation per candidate, in stream order. A failed
        // shard fails each of its candidates with the shard's error, so the
        // fold surfaces the lowest failing candidate — the error a serial
        // run would report.
        let mut evaluations = Vec::with_capacity(batch.len());
        for (k, done) in outcome.done.into_iter().enumerate() {
            let len = shards[k].range.len();
            match done {
                ShardDone::Rows {
                    rows,
                    cancelled: false,
                } if rows.len() == len => {
                    evaluations.extend(rows.into_iter().map(|row| Ok(row.evaluation)));
                }
                ShardDone::Rows { .. } => {
                    for _ in 0..len {
                        evaluations.push(Err(CoreError::Remote {
                            code: E_REMOTE.to_string(),
                            message: format!(
                                "search `{}`: a worker returned a partial shard",
                                spec.name
                            ),
                        }));
                    }
                }
                ShardDone::Failed { code, message } => {
                    for _ in 0..len {
                        evaluations.push(Err(CoreError::Remote {
                            code: code.clone(),
                            message: message.clone(),
                        }));
                    }
                }
                ShardDone::Skipped => {
                    for _ in 0..len {
                        evaluations.push(Err(CoreError::Remote {
                            code: E_WORKER_LOST.to_string(),
                            message: "a worker was lost before its shard completed".to_string(),
                        }));
                    }
                }
            }
        }
        Ok(evaluations)
    });

    let wall = start.elapsed().as_secs_f64();
    let perf =
        ResponsePerf::new(wall, request.serial).with_cluster(stats.perf(backend, world, wall));
    match result {
        Ok(outcome) => Response::new(
            request.id.clone(),
            "search",
            outcome.interrupted,
            perf,
            Ok(Payload::Search(Box::new(outcome.report))),
        ),
        Err(e) => Response::new(
            request.id.clone(),
            "search",
            false,
            perf,
            Err(ServiceError::from_core(&e)),
        ),
    }
}

/// Outcome of one shard set.
struct ShardSetOutcome {
    /// One entry per shard, in shard order.
    done: Vec<ShardDone>,
    /// Whether a cancel/deadline interrupted the set.
    interrupted: bool,
    /// Set when every worker died with work still outstanding.
    fatal: Option<String>,
}

/// Runs one set of shards over the pool: at most one in-flight shard per
/// worker, re-dispatching on worker death, forwarding cancellation when an
/// `interrupt` is given, and reporting shard events through `on_signal`.
fn execute_shards(
    cluster: &mut Cluster,
    shards: &[ShardSpec],
    interrupt: Option<&Interrupt<'_>>,
    stats: &mut ShardStats,
    mut on_signal: impl FnMut(usize, ShardSignal<'_>),
) -> ShardSetOutcome {
    let mut done: Vec<Option<ShardDone>> = shards.iter().map(|_| None).collect();
    let mut queue: VecDeque<usize> = (0..shards.len()).collect();
    let mut interrupted = false;
    let mut fatal = None;

    loop {
        // Cancellation/deadline: drop what has not started, tell every busy
        // worker to stop its shard at the next batch boundary, then keep
        // looping to collect the (partial) in-flight responses.
        if !interrupted && interrupt.is_some_and(Interrupt::triggered) {
            interrupted = true;
            while let Some(shard) = queue.pop_front() {
                done[shard] = Some(ShardDone::Skipped);
            }
            for slot in cluster.workers.iter_mut() {
                if slot.alive {
                    if let Some(shard) = slot.busy {
                        let _ = slot.tx.send_line(&cancel_line(&shards[shard].id));
                    }
                }
            }
        }

        if done.iter().all(Option::is_some) {
            break;
        }

        // Fill idle workers from the queue.
        for rank in 0..cluster.workers.len() {
            if queue.is_empty() {
                break;
            }
            let line = {
                let slot = &cluster.workers[rank];
                if !slot.alive || slot.busy.is_some() {
                    continue;
                }
                let shard = *queue.front().expect("queue checked non-empty");
                dispatch_line(&shards[shard], interrupt)
            };
            let shard = queue.pop_front().expect("queue checked non-empty");
            let slot = &mut cluster.workers[rank];
            match slot.tx.send_line(&line) {
                Ok(()) => {
                    slot.busy = Some(shard);
                    slot.busy_since = Some(Instant::now());
                }
                Err(_) => {
                    // Found out the worker is gone at send time; its Closed
                    // event (if any) is still coming, but the shard goes
                    // back to the front of the queue right away.
                    slot.alive = false;
                    queue.push_front(shard);
                }
            }
        }

        if cluster.workers.iter().all(|slot| !slot.alive) && done.iter().any(Option::is_none) {
            fatal = Some(format!(
                "all {} workers exited with shards outstanding",
                cluster.workers.len()
            ));
            for slot in done.iter_mut() {
                if slot.is_none() {
                    *slot = Some(ShardDone::Skipped);
                }
            }
            break;
        }

        match cluster.events.recv_timeout(POLL_INTERVAL) {
            Ok(WorkerEvent::Line(rank, line)) => {
                let Some(shard) = cluster.workers[rank].busy else {
                    continue; // stray output from an idle worker
                };
                let Ok(value) = serde_json::from_str(&line) else {
                    continue;
                };
                if value.get("id").and_then(Value::as_str) != Some(shards[shard].id.as_str()) {
                    continue;
                }
                match value.get("type").and_then(Value::as_str) {
                    Some("progress") => on_signal(shard, ShardSignal::Progress(&value)),
                    Some("response") => {
                        let slot = &mut cluster.workers[rank];
                        slot.busy = None;
                        if let Some(since) = slot.busy_since.take() {
                            stats.busy_seconds += since.elapsed().as_secs_f64();
                        }
                        stats.dispatched += 1;
                        let outcome = decode_response(&value);
                        on_signal(shard, ShardSignal::Done(&outcome));
                        done[shard] = Some(outcome);
                    }
                    _ => {}
                }
            }
            Ok(WorkerEvent::Closed(rank)) => {
                let slot = &mut cluster.workers[rank];
                slot.alive = false;
                slot.busy_since = None;
                if let Some(shard) = slot.busy.take() {
                    if interrupted {
                        let outcome = ShardDone::Skipped;
                        on_signal(shard, ShardSignal::Done(&outcome));
                        done[shard] = Some(outcome);
                    } else {
                        // The crash recovery path: the worker died mid-shard,
                        // so the shard re-dispatches to a surviving worker.
                        stats.retried += 1;
                        queue.push_back(shard);
                    }
                }
            }
            // Timeout: loop back around to re-check interrupts and health.
            // Disconnection cannot happen (the cluster holds a keepalive
            // sender), but treat it like a timeout if it ever did.
            Err(_) => {}
        }
    }

    ShardSetOutcome {
        done: done
            .into_iter()
            .map(|d| d.expect("loop exits only once every shard is done"))
            .collect(),
        interrupted,
        fatal,
    }
}

/// Builds a shard's sweep request object (without a deadline; the remaining
/// deadline is attached per dispatch).
fn shard_request(id: &str, serial: bool, sweep: Value) -> Value {
    Value::Object(vec![
        (
            "protocol_version".to_string(),
            Value::UInt(PROTOCOL_VERSION),
        ),
        ("id".to_string(), Value::Str(id.to_string())),
        ("kind".to_string(), Value::Str("sweep".to_string())),
        ("serial".to_string(), Value::Bool(serial)),
        ("sweep".to_string(), sweep),
    ])
}

/// Renders a shard's dispatch line, attaching the job's remaining deadline
/// so a re-dispatched shard never outlives the job's budget.
fn dispatch_line(shard: &ShardSpec, interrupt: Option<&Interrupt<'_>>) -> String {
    let mut body = shard.body.clone();
    if let Some(ms) = interrupt.and_then(Interrupt::remaining_ms) {
        if let Value::Object(entries) = &mut body {
            entries.push(("deadline_ms".to_string(), Value::UInt(ms)));
        }
    }
    serde_json::to_string(&body).expect("request values serialise")
}

fn cancel_line(id: &str) -> String {
    serde_json::to_string(&Value::Object(vec![
        (
            "protocol_version".to_string(),
            Value::UInt(PROTOCOL_VERSION),
        ),
        ("cancel".to_string(), Value::Str(id.to_string())),
    ]))
    .expect("cancel lines serialise")
}

/// Decodes a worker's response line into the shard's outcome.
fn decode_response(value: &Value) -> ShardDone {
    let cancelled = matches!(value.get("cancelled"), Some(Value::Bool(true)));
    match value.get("status").and_then(Value::as_str) {
        Some("ok") => match value
            .get("result")
            .and_then(|r| r.get("results"))
            .map(wire::sweep_results_from_value)
        {
            Some(Ok(results)) => ShardDone::Rows {
                rows: results.rows,
                cancelled,
            },
            Some(Err(e)) => ShardDone::Failed {
                code: remote_code(&e),
                message: e.to_string(),
            },
            None => ShardDone::Failed {
                code: E_REMOTE.to_string(),
                message: "worker response carried no sweep results".to_string(),
            },
        },
        Some("error") => {
            let field = |key: &str| {
                value
                    .get("error")
                    .and_then(|e| e.get(key))
                    .and_then(Value::as_str)
            };
            ShardDone::Failed {
                code: field("code").unwrap_or(E_REMOTE).to_string(),
                message: field("message")
                    .unwrap_or("worker reported an error")
                    .to_string(),
            }
        }
        _ => ShardDone::Failed {
            code: E_REMOTE.to_string(),
            message: "worker response carried no status".to_string(),
        },
    }
}

fn remote_code(error: &CoreError) -> String {
    match error {
        CoreError::Remote { code, .. } => code.clone(),
        other => error_code(other).to_string(),
    }
}

/// Re-tags a worker's `row_completed` line with the parent job's id and the
/// point's global index/total. Other progress lines map to `None`.
fn patch_row_line(value: &Value, id: &str, offset: usize, total: usize) -> Option<String> {
    if value.get("event").and_then(Value::as_str) != Some("row_completed") {
        return None;
    }
    let Value::Object(entries) = value else {
        return None;
    };
    let patched: Vec<(String, Value)> = entries
        .iter()
        .map(|(key, v)| {
            let v = match key.as_str() {
                "id" => Value::Str(id.to_string()),
                "index" => Value::UInt(v.as_u64().unwrap_or(0) + offset as u64),
                "total" => Value::UInt(total as u64),
                _ => v.clone(),
            };
            (key.clone(), v)
        })
        .collect();
    serde_json::to_string(&Value::Object(patched)).ok()
}

/// Writes one NDJSON line, flushing immediately (the serve-session
/// guarantee: lines are visible the moment their event happens).
fn emit_line<W: Write>(out: Option<&Mutex<W>>, text: &str) {
    if let Some(out) = out {
        let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{text}");
        let _ = out.flush();
    }
}

/// A [`ProgressSink`] over an optional shared writer: the coordinator's
/// local search fold streams through this, and `msfu run --workers` without
/// `--progress` passes `None`.
struct OptionalSink<'a, W: Write> {
    id: &'a str,
    out: Option<&'a Mutex<W>>,
}

impl<W: Write> ProgressSink for OptionalSink<'_, W> {
    fn emit(&self, event: &ProgressEvent<'_>) {
        if let Ok(text) = serde_json::to_string(&progress_to_value(self.id, event)) {
            emit_line(self.out, &text);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{serve, ServeOptions};

    /// Runs one serve session over the given lines and returns its parsed
    /// output lines.
    fn session(options: &ServeOptions, lines: &str) -> Vec<Value> {
        let mut output: Vec<u8> = Vec::new();
        let input = std::io::Cursor::new(lines.to_string().into_bytes());
        serve(input, &mut output, options).unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).expect("output lines are JSON"))
            .collect()
    }

    fn response_of<'a>(values: &'a [Value], id: &str) -> &'a Value {
        values
            .iter()
            .find(|v| {
                v.get("type").and_then(Value::as_str) == Some("response")
                    && v.get("id").and_then(Value::as_str) == Some(id)
            })
            .expect("session produced the response")
    }

    /// The fields of a response that must be byte-identical between serial
    /// and sharded execution (everything except the perf stamp).
    fn stable_fields(response: &Value) -> String {
        let stripped: Vec<(String, Value)> = match response {
            Value::Object(entries) => entries
                .iter()
                .filter(|(k, _)| k != "perf")
                .cloned()
                .collect(),
            _ => panic!("responses are objects"),
        };
        serde_json::to_string(&Value::Object(stripped)).unwrap()
    }

    fn cluster_perf_of<'a>(response: &'a Value, key: &str) -> &'a Value {
        response
            .get("perf")
            .and_then(|p| p.get("cluster"))
            .and_then(|c| c.get(key))
            .expect("clustered responses carry perf.cluster")
    }

    const SWEEP_LINE: &str = concat!(
        r#"{"protocol_version": 1, "id": "j", "kind": "sweep", "sweep": {"name": "t", "points": ["#,
        r#"{"label": "p0", "factory": {"k": 2}, "strategy": {"strategy": "linear"}},"#,
        r#"{"label": "p1", "factory": {"k": 2}, "strategy": {"strategy": "random", "seed": 1}},"#,
        r#"{"label": "p2", "factory": {"k": 3}, "strategy": {"strategy": "random", "seed": 2, "expansion": 1.5}},"#,
        r#"{"label": "p3", "factory": {"k": 2, "reuse": "NR"}, "strategy": {"strategy": "linear"}},"#,
        r#"{"label": "p4", "factory": {"k": 2}, "strategy": {"strategy": "graph_partition", "seed": 3}}]}}"#,
        "\n",
    );

    const SEARCH_LINE: &str = concat!(
        r#"{"protocol_version": 1, "id": "s", "kind": "search", "search": {"#,
        r#""name": "srch", "factory": {"k": 2}, "budget": 10, "batch_size": 4, "seed": 7,"#,
        r#""portfolio": [{"strategy": {"strategy": "random"}, "seeded": true},"#,
        r#"{"strategy": {"strategy": "linear"}, "seeded": false}]}}"#,
        "\n",
    );

    #[test]
    fn sharded_sweep_is_byte_identical_to_serial_at_any_worker_count() {
        let serial = session(&ServeOptions::new(), SWEEP_LINE);
        let reference = stable_fields(response_of(&serial, "j"));
        assert!(reference.contains(r#""status":"ok""#), "{reference}");
        for workers in [1, 2, 4, 7] {
            let clustered = session(&ServeOptions::new().with_workers(workers), SWEEP_LINE);
            let response = response_of(&clustered, "j");
            assert_eq!(
                stable_fields(response),
                reference,
                "workers={workers} diverged"
            );
            assert_eq!(
                cluster_perf_of(response, "workers"),
                &Value::UInt(workers as u64)
            );
            assert_eq!(cluster_perf_of(response, "shards_retried"), &Value::UInt(0));
        }
    }

    #[test]
    fn sharded_search_is_byte_identical_to_serial_at_any_worker_count() {
        let serial = session(&ServeOptions::new(), SEARCH_LINE);
        let reference = stable_fields(response_of(&serial, "s"));
        assert!(reference.contains(r#""incumbent""#), "{reference}");
        for workers in [1, 2, 4] {
            let clustered = session(&ServeOptions::new().with_workers(workers), SEARCH_LINE);
            assert_eq!(
                stable_fields(response_of(&clustered, "s")),
                reference,
                "workers={workers} diverged"
            );
        }
    }

    #[test]
    fn clustered_sweep_streams_patched_row_progress_and_merged_batches() {
        let clustered = session(&ServeOptions::new().with_workers(2), SWEEP_LINE);
        let rows: Vec<&Value> = clustered
            .iter()
            .filter(|v| v.get("event").and_then(Value::as_str) == Some("row_completed"))
            .collect();
        assert_eq!(rows.len(), 5, "one row event per point");
        let mut indices: Vec<u64> = rows
            .iter()
            .map(|v| {
                assert_eq!(v.get("id").and_then(Value::as_str), Some("j"));
                assert_eq!(v.get("total").and_then(Value::as_u64), Some(5));
                v.get("index").and_then(Value::as_u64).unwrap()
            })
            .collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3, 4], "global indices, each once");
        let last_batch = clustered
            .iter()
            .rfind(|v| v.get("event").and_then(Value::as_str) == Some("batch_finished"))
            .expect("coordinator emits merged batch events");
        assert_eq!(last_batch.get("completed").and_then(Value::as_u64), Some(5));
        assert_eq!(last_batch.get("total").and_then(Value::as_u64), Some(5));
    }

    #[test]
    fn a_worker_crash_re_dispatches_its_shard_and_rows_are_identical() {
        let serial = session(&ServeOptions::new(), SWEEP_LINE);
        let reference = stable_fields(response_of(&serial, "j"));
        // Rank 1 dies upon receiving its first request, so its shard must
        // be re-dispatched to rank 0.
        let options = ServeOptions::new().with_workers(2).with_fault(1, 0);
        let faulted = session(&options, SWEEP_LINE);
        let response = response_of(&faulted, "j");
        assert_eq!(stable_fields(response), reference, "recovered run diverged");
        let retried = cluster_perf_of(response, "shards_retried")
            .as_u64()
            .unwrap();
        assert!(retried >= 1, "the lost shard counts as retried");
    }

    #[test]
    fn losing_every_worker_yields_a_typed_error() {
        // The whole pool is one worker, and it dies on its first request.
        let options = ServeOptions::new().with_workers(1).with_fault(0, 0);
        let values = session(&options, SWEEP_LINE);
        let response = response_of(&values, "j");
        assert_eq!(
            response.get("status").and_then(Value::as_str),
            Some("error")
        );
        assert_eq!(
            response
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some(E_WORKER_LOST)
        );
    }

    #[test]
    fn pre_cancel_and_zero_deadline_reach_the_whole_pool() {
        let pre_cancel = concat!(
            r#"{"protocol_version": 1, "cancel": "j"}"#,
            "\n",
            r#"{"protocol_version": 1, "id": "j", "kind": "sweep", "sweep": {"name": "t", "points": [{"label": "p", "factory": {"k": 2}, "strategy": {"strategy": "linear"}}]}}"#,
            "\n",
        );
        let values = session(&ServeOptions::new().with_workers(2), pre_cancel);
        let response = response_of(&values, "j");
        assert_eq!(response.get("cancelled"), Some(&Value::Bool(true)));
        let rows = response
            .get("result")
            .and_then(|r| r.get("results"))
            .and_then(|r| r.get("rows"))
            .and_then(Value::as_array)
            .expect("cancelled sweeps report partial rows");
        assert!(rows.is_empty(), "nothing ran before the cancel");

        let deadline = concat!(
            r#"{"protocol_version": 1, "id": "d", "kind": "sweep", "deadline_ms": 0, "sweep": {"name": "t", "points": [{"label": "p", "factory": {"k": 2}, "strategy": {"strategy": "linear"}}]}}"#,
            "\n",
        );
        let values = session(&ServeOptions::new().with_workers(2), deadline);
        let response = response_of(&values, "d");
        assert_eq!(response.get("cancelled"), Some(&Value::Bool(true)));
    }

    #[test]
    fn errors_keep_their_serial_codes_and_messages_across_the_cluster() {
        // k=0 fails factory validation inside a worker; the coordinator
        // must surface the exact serial code and message.
        let line = concat!(
            r#"{"protocol_version": 1, "id": "bad", "kind": "sweep", "sweep": {"name": "t", "points": [{"label": "p", "factory": {"capacity": 0}, "strategy": {"strategy": "linear"}}]}}"#,
            "\n",
        );
        let serial = session(&ServeOptions::new(), line);
        let clustered = session(&ServeOptions::new().with_workers(2), line);
        assert_eq!(
            stable_fields(response_of(&serial, "bad")),
            stable_fields(response_of(&clustered, "bad"))
        );
    }
}
