//! The coordinator: shard fan-out, deterministic merge, supervised fault
//! recovery.
//!
//! A coordinated job never changes *what* is computed — only *where*. The
//! shard plan is a pure function of the spec and the configured pool size
//! (see [`shard_ranges`]), each shard is an ordinary serve-protocol sweep
//! request a worker executes with the normal engine, and merging walks the
//! shards in plan order — so the merged rows, incumbents and error codes are
//! byte-identical to a serial run whatever order shards actually finish in,
//! and whichever workers they land on.
//!
//! Supervision ([`Supervision`]): every worker fault — a worker whose
//! output closes mid-shard, one whose shard overruns the shard timeout
//! (the worker is declared hung and killed), or one that answers with an
//! undecodable response — costs one unit of the shard's retry budget and
//! re-dispatches the shard with exponential backoff (`shards_retried` in
//! `perf.cluster` counts these). A shard whose budget is spent fails the
//! job typed with [`E_SHARD_RETRY_EXHAUSTED`] — faults must never loop
//! forever. Dead workers are replaced by clean respawns at fresh ranks, up
//! to the session's respawn budget (`workers_respawned`); if the whole pool
//! is gone and the budget is spent, the coordinator finishes the remaining
//! shards in-process through the ordinary [`Service`] path
//! (`shards_local_fallback`) rather than failing the job. Cancellation and
//! deadlines fan out: the coordinator forwards a cancel line for every
//! in-flight shard and skips the queued ones, then merges the longest
//! completed prefix exactly like a serial cancelled run — and a cancelled
//! worker that never answers is killed after a grace period, so an
//! interrupt always terminates the job.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::ops::Range;
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

use serde_json::Value;

use msfu_core::wire;
use msfu_core::{CoreError, ProgressEvent, ProgressSink, RunControl, SweepResults, SweepRow};
use msfu_core::{SearchSpec, SweepSpec};

use crate::cluster::comm::{self, ClusterBackend, WorkerEvent, WorkerTx};
use crate::cluster::planner::shard_ranges;
use crate::error_code::{E_REMOTE, E_SHARD_RETRY_EXHAUSTED};
use crate::faults::{FaultPlan, WorkerFaultSpec};
use crate::ndjson::progress_to_value;
use crate::protocol::{
    ClusterPerf, Job, Payload, Request, Response, ResponsePerf, ServiceError, SessionLine,
    PROTOCOL_VERSION,
};
use crate::service::{JobHandle, Service};

/// How long a busy worker may sit on a cancelled shard before the
/// supervisor kills it anyway (used when no shard timeout is configured).
const INTERRUPT_GRACE: Duration = Duration::from_secs(2);

/// Longest event wait when no interrupt can arrive (search batches): the
/// loop only needs to wake for worker events and supervision edges, and
/// every edge bounds the wait below this.
const MAX_WAIT: Duration = Duration::from_secs(1);

/// Longest event wait while a cancel could arrive at any moment (cancel
/// tokens flip asynchronously, without an event to wake on).
const MAX_WAIT_INTERRUPTIBLE: Duration = Duration::from_millis(100);

/// Shortest event wait: a zero-duration `recv_timeout` would busy-spin.
const MIN_WAIT: Duration = Duration::from_millis(1);

/// Supervision policy of a worker pool: how patient the coordinator is with
/// faulty workers before it re-plans, replaces, or fails typed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub struct Supervision {
    /// How long one dispatched shard may stay in flight before its worker
    /// is declared hung, killed, and the shard re-dispatched (`None` = no
    /// timeout; a job deadline still interrupts, and interrupted workers
    /// get a short grace period (`INTERRUPT_GRACE`) before being killed).
    pub shard_timeout: Option<Duration>,
    /// How many times one shard may be re-dispatched after worker faults
    /// before the job fails with [`E_SHARD_RETRY_EXHAUSTED`].
    pub retry_budget: u32,
    /// How many replacement workers may be spawned over the pool's
    /// lifetime. Respawns land at fresh ranks with no fault injection.
    pub max_respawns: u32,
    /// First re-dispatch delay; doubles per attempt (capped at ×64).
    pub backoff_base: Duration,
}

impl Default for Supervision {
    fn default() -> Self {
        Supervision {
            shard_timeout: None,
            retry_budget: 3,
            max_respawns: 0,
            backoff_base: Duration::from_millis(25),
        }
    }
}

impl Supervision {
    /// Sets the shard timeout (builder style); `None` disables it.
    pub fn with_shard_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.shard_timeout = timeout;
        self
    }

    /// Sets the per-shard re-dispatch budget (builder style).
    pub fn with_retry_budget(mut self, retry_budget: u32) -> Self {
        self.retry_budget = retry_budget;
        self
    }

    /// Sets the pool-lifetime respawn budget (builder style).
    pub fn with_max_respawns(mut self, max_respawns: u32) -> Self {
        self.max_respawns = max_respawns;
        self
    }
}

/// A connected worker pool, reusable across the jobs of a serve session.
///
/// Workers are connected once and kept until the pool is dropped; a worker
/// that dies stays dead (its shards re-dispatch to the survivors, and the
/// supervisor may append a clean replacement at a fresh rank), and the
/// shard *plan* always uses the configured pool size, so results do not
/// depend on which workers happen to be alive.
pub struct Cluster {
    workers: Vec<WorkerSlot>,
    events: mpsc::Receiver<WorkerEvent>,
    /// Respawn source and keepalive: replacement workers clone this sender,
    /// and holding it keeps `recv_timeout` reporting timeouts (never
    /// disconnection) even while no worker is alive.
    event_tx: mpsc::Sender<WorkerEvent>,
    backend: ClusterBackend,
    backend_name: &'static str,
    /// The pool size the shard plan uses, fixed at connect time.
    configured: usize,
    supervision: Supervision,
    /// Replacement workers spawned so far (counts against
    /// [`Supervision::max_respawns`], failed spawn attempts included).
    respawned: u32,
}

struct WorkerSlot {
    tx: Box<dyn WorkerTx>,
    alive: bool,
    /// Index (into the current shard set) of the in-flight shard.
    busy: Option<usize>,
    busy_since: Option<Instant>,
}

impl Cluster {
    /// Connects a pool of `workers` workers (at least one) over `backend`,
    /// handing each rank its slice of the fault plan (when given).
    ///
    /// # Errors
    ///
    /// Fails when a child worker process cannot be spawned; the
    /// [`ClusterBackend::LocalThreads`] backend is infallible.
    pub fn connect(
        backend: &ClusterBackend,
        workers: usize,
        plan: Option<&FaultPlan>,
    ) -> io::Result<Cluster> {
        let (tx, rx) = mpsc::channel();
        let txs = comm::connect(backend, workers.max(1), plan, &tx)?;
        let configured = txs.len();
        Ok(Cluster {
            workers: txs
                .into_iter()
                .map(|tx| WorkerSlot {
                    tx,
                    alive: true,
                    busy: None,
                    busy_since: None,
                })
                .collect(),
            events: rx,
            event_tx: tx,
            backend: backend.clone(),
            backend_name: backend.name(),
            configured,
            supervision: Supervision::default(),
            respawned: 0,
        })
    }

    /// Sets the pool's supervision policy (builder style).
    pub fn with_supervision(mut self, supervision: Supervision) -> Cluster {
        self.supervision = supervision;
        self
    }

    /// The configured pool size (dead workers included — the shard plan
    /// never shrinks with the pool, and never grows with respawns).
    pub fn world(&self) -> usize {
        self.configured
    }

    /// Spawns clean replacement workers at fresh ranks until the alive
    /// count is back at the configured pool size or the respawn budget is
    /// spent; returns how many were spawned. Replacements carry no fault
    /// injection — a faulty replacement could loop recovery forever.
    fn respawn_dead(&mut self) -> u64 {
        let mut spawned = 0;
        while self.respawned < self.supervision.max_respawns {
            let alive = self.workers.iter().filter(|w| w.alive).count();
            if alive >= self.configured {
                break;
            }
            let rank = self.workers.len();
            // A failed spawn attempt consumes budget too: retrying a spawn
            // that just failed would spin without making progress.
            self.respawned += 1;
            match comm::connect_rank(
                &self.backend,
                rank,
                WorkerFaultSpec::default(),
                self.event_tx.clone(),
            ) {
                Ok(tx) => {
                    self.workers.push(WorkerSlot {
                        tx,
                        alive: true,
                        busy: None,
                        busy_since: None,
                    });
                    spawned += 1;
                }
                Err(_) => break,
            }
        }
        spawned
    }
}

impl std::fmt::Debug for Cluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Cluster")
            .field("backend", &self.backend_name)
            .field("workers", &self.workers.len())
            .field("alive", &self.workers.iter().filter(|w| w.alive).count())
            .field("respawned", &self.respawned)
            .finish()
    }
}

/// One planned shard: a sub-range of the job, as a ready-to-send request.
struct ShardSpec {
    id: String,
    range: Range<usize>,
    body: Value,
}

/// How one shard ended.
enum ShardDone {
    /// The worker responded with rows (possibly a cancelled partial prefix).
    Rows {
        rows: Vec<SweepRow>,
        cancelled: bool,
    },
    /// The worker responded with a typed error.
    Failed { code: String, message: String },
    /// The shard never completed: skipped after a cancel/deadline, or
    /// abandoned when the job failed fatally.
    Skipped,
}

/// What the shard executor tells the caller as the job unfolds.
enum ShardSignal<'a> {
    /// A progress line from the shard's worker (verbatim, shard-local ids
    /// and indices).
    Progress(&'a Value),
    /// The shard finished.
    Done(&'a ShardDone),
}

/// Dispatch/occupancy counters accumulated across one job's shard sets.
#[derive(Default)]
struct ShardStats {
    dispatched: u64,
    retried: u64,
    respawned: u64,
    local_fallback: u64,
    busy_seconds: f64,
}

impl ShardStats {
    fn perf(&self, backend: &'static str, workers: usize, wall_seconds: f64) -> ClusterPerf {
        let pool = workers.max(1) as f64;
        let ideal = self.busy_seconds / pool;
        ClusterPerf {
            backend,
            workers,
            shards: self.dispatched,
            shards_retried: self.retried,
            workers_respawned: self.respawned,
            shards_local_fallback: self.local_fallback,
            occupancy: if wall_seconds > 0.0 {
                (self.busy_seconds / (wall_seconds * pool)).min(1.0)
            } else {
                0.0
            },
            coordinator_seconds: (wall_seconds - ideal).max(0.0),
        }
    }
}

/// Per-shard retry accounting of one shard set: how many faults each shard
/// has absorbed, and when each queued shard's backoff expires.
struct RetryState {
    attempts: Vec<u32>,
    not_before: Vec<Instant>,
}

impl RetryState {
    fn new(shards: usize) -> Self {
        let now = Instant::now();
        RetryState {
            attempts: vec![0; shards],
            not_before: vec![now; shards],
        }
    }

    /// Books one worker fault against `shard`: counts the retry and either
    /// requeues the shard with exponential backoff, or — once the retry
    /// budget is spent — returns the job's fatal error. Checked *before*
    /// any pool-loss handling, so a shard that keeps killing its workers
    /// fails typed instead of consuming the whole session.
    fn fault(
        &mut self,
        shard: usize,
        reason: &str,
        supervision: &Supervision,
        queue: &mut VecDeque<usize>,
        stats: &mut ShardStats,
    ) -> Option<(&'static str, String)> {
        stats.retried += 1;
        self.attempts[shard] += 1;
        let attempts = self.attempts[shard];
        if attempts > supervision.retry_budget {
            return Some((
                E_SHARD_RETRY_EXHAUSTED,
                format!(
                    "shard {shard} hit {attempts} worker fault(s) (last: {reason}) \
                     with a re-dispatch budget of {}",
                    supervision.retry_budget
                ),
            ));
        }
        // Exponential backoff: base, ×2, ×4, ... capped at ×64.
        let backoff = supervision.backoff_base * (1u32 << (attempts - 1).min(6));
        self.not_before[shard] = Instant::now() + backoff;
        queue.push_back(shard);
        None
    }
}

/// Cancellation/deadline source of the job being coordinated.
struct Interrupt<'a> {
    handle: &'a JobHandle,
    deadline: Option<Instant>,
}

impl Interrupt<'_> {
    fn triggered(&self) -> bool {
        self.handle.is_cancelled() || self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Milliseconds left until the deadline (saturating at zero), if any.
    fn remaining_ms(&self) -> Option<u64> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()).as_millis() as u64)
    }
}

/// When a busy worker crosses from "still working" to "declared hung": its
/// shard timeout, tightened after an interrupt to a grace period (a
/// cancelled worker that never answers must not hold the session open).
fn busy_edge(
    since: Instant,
    supervision: &Supervision,
    interrupted_at: Option<Instant>,
) -> Option<Instant> {
    let timeout = supervision.shard_timeout.map(|t| since + t);
    let grace = interrupted_at.map(|at| at + supervision.shard_timeout.unwrap_or(INTERRUPT_GRACE));
    match (timeout, grace) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (edge, other) => edge.or(other),
    }
}

/// Executes one request against the pool, streaming merged progress lines
/// to `progress` (when given) and returning the merged response.
///
/// Sweeps are sharded directly; searches run their deterministic fold on
/// the coordinator and shard each candidate batch. `Evaluate` jobs are a
/// single bounded simulation — they run in-process, exactly like an
/// uncoordinated serve session would run them.
pub fn run_clustered<W: Write>(
    cluster: &mut Cluster,
    request: &Request,
    handle: &JobHandle,
    progress: Option<&Mutex<W>>,
) -> Response {
    let start = Instant::now();
    match &request.job {
        Job::Sweep { spec } => run_sweep(cluster, request, spec, handle, progress, start),
        Job::Search { spec } => run_search(cluster, request, spec, handle, progress, start),
        _ => {
            let sink = OptionalSink {
                id: &request.id,
                out: progress,
            };
            Service::new().run(request, handle, &sink)
        }
    }
}

fn run_sweep<W: Write>(
    cluster: &mut Cluster,
    request: &Request,
    spec: &SweepSpec,
    handle: &JobHandle,
    progress: Option<&Mutex<W>>,
    start: Instant,
) -> Response {
    let total = spec.points.len();
    let world = cluster.world();
    let backend = cluster.backend_name;
    let shards: Vec<ShardSpec> = shard_ranges(total, world)
        .into_iter()
        .enumerate()
        .map(|(k, range)| {
            let id = format!("{}#s{k}", request.id);
            let body = shard_request(
                &id,
                request.serial,
                wire::sweep_spec_to_value(&spec.slice(range.clone())),
            );
            ShardSpec { id, range, body }
        })
        .collect();
    let interrupt = Interrupt {
        handle,
        deadline: request
            .deadline_ms
            .map(|ms| start + Duration::from_millis(ms)),
    };
    let offsets: Vec<usize> = shards.iter().map(|s| s.range.start).collect();
    let mut stats = ShardStats::default();
    let mut completed = 0usize;
    let outcome = execute_shards(
        cluster,
        &shards,
        Some(&interrupt),
        &mut stats,
        |shard, signal| match signal {
            // Worker row events pass through with the parent id and the
            // global index/total. They appear as workers produce them, so
            // (unlike single-process runs) global index order is not
            // guaranteed across shards — each line is still exact.
            ShardSignal::Progress(value) => {
                if let Some(text) = patch_row_line(value, &request.id, offsets[shard], total) {
                    emit_line(progress, &text);
                }
            }
            // Worker batch events are dropped (their totals are
            // shard-local); the coordinator emits its own merged
            // `batch_finished` as each shard lands.
            ShardSignal::Done(done) => {
                if let ShardDone::Rows { rows, .. } = done {
                    completed += rows.len();
                    let event = ProgressEvent::BatchFinished {
                        name: &spec.name,
                        completed,
                        total,
                    };
                    if let Ok(text) = serde_json::to_string(&progress_to_value(&request.id, &event))
                    {
                        emit_line(progress, &text);
                    }
                }
            }
        },
    );

    let wall = start.elapsed().as_secs_f64();
    let perf =
        ResponsePerf::new(wall, request.serial).with_cluster(stats.perf(backend, world, wall));
    if let Some((code, message)) = outcome.fatal {
        return Response::new(
            request.id.clone(),
            "sweep",
            false,
            perf,
            Err(ServiceError::new(code, message)),
        );
    }
    // The lowest failed shard wins: it contains the lowest failing point,
    // which is the error a serial run would have stopped at.
    for done in &outcome.done {
        if let ShardDone::Failed { code, message } = done {
            let error = ServiceError::from_core(&CoreError::Remote {
                code: code.clone(),
                message: message.clone(),
            });
            return Response::new(request.id.clone(), "sweep", false, perf, Err(error));
        }
    }
    // Merge in shard (= point) order, stopping at the first incomplete
    // shard so a cancelled job reports a clean prefix, like a serial run.
    let mut rows: Vec<SweepRow> = Vec::with_capacity(total);
    let mut cancelled = outcome.interrupted;
    for done in outcome.done {
        match done {
            ShardDone::Rows {
                rows: mut shard_rows,
                cancelled: shard_cancelled,
            } => {
                rows.append(&mut shard_rows);
                if shard_cancelled {
                    cancelled = true;
                    break;
                }
            }
            ShardDone::Skipped => {
                cancelled = true;
                break;
            }
            ShardDone::Failed { .. } => unreachable!("failed shards returned above"),
        }
    }
    Response::new(
        request.id.clone(),
        "sweep",
        cancelled,
        perf,
        Ok(Payload::Sweep(SweepResults {
            name: spec.name.clone(),
            rows,
        })),
    )
}

fn run_search<W: Write>(
    cluster: &mut Cluster,
    request: &Request,
    spec: &SearchSpec,
    handle: &JobHandle,
    progress: Option<&Mutex<W>>,
    start: Instant,
) -> Response {
    let world = cluster.world();
    let backend = cluster.backend_name;
    let sink = OptionalSink {
        id: &request.id,
        out: progress,
    };
    let mut ctrl = RunControl::default()
        .with_progress(&sink)
        .with_cancel(handle.token());
    if let Some(ms) = request.deadline_ms {
        ctrl = ctrl.with_deadline(start + Duration::from_millis(ms));
    }
    let mut stats = ShardStats::default();
    let mut batch_seq = 0usize;
    // The deterministic fold (candidate stream, incumbents, stop reasons)
    // runs right here on the coordinator; only the batch evaluations fan
    // out, as ordinary sweep requests over the batch's candidates. That is
    // exactly the serial fold with a different evaluator, so the report is
    // byte-identical to a serial run.
    let result = spec.run_with_evaluator(&ctrl, |batch| {
        batch_seq += 1;
        let shards: Vec<ShardSpec> = shard_ranges(batch.len(), world)
            .into_iter()
            .enumerate()
            .map(|(k, range)| {
                let mut sub = SweepSpec::new(spec.name.clone(), spec.eval);
                sub.use_eval_cache = spec.use_eval_cache;
                sub.cache_dir = spec.cache_dir.clone();
                for (g, strategy) in &batch[range.clone()] {
                    sub = sub.point(format!("c{g}"), spec.factory, strategy.clone());
                }
                let id = format!("{}#b{batch_seq}s{k}", request.id);
                let body = shard_request(&id, request.serial, wire::sweep_spec_to_value(&sub));
                ShardSpec { id, range, body }
            })
            .collect();
        // No interrupt here: like a serial run, an in-flight batch always
        // completes — the fold honours cancellation and deadlines between
        // batches. Sub-request progress stays internal (shard-local labels
        // would only confuse a client); search progress comes from the fold.
        let outcome = execute_shards(cluster, &shards, None, &mut stats, |_, _| {});
        if let Some((code, message)) = outcome.fatal {
            return Err(CoreError::Remote {
                code: code.to_string(),
                message,
            });
        }
        // Exactly one evaluation per candidate, in stream order. A failed
        // shard fails each of its candidates with the shard's error, so the
        // fold surfaces the lowest failing candidate — the error a serial
        // run would report.
        let mut evaluations = Vec::with_capacity(batch.len());
        for (k, done) in outcome.done.into_iter().enumerate() {
            let len = shards[k].range.len();
            match done {
                ShardDone::Rows {
                    rows,
                    cancelled: false,
                } if rows.len() == len => {
                    evaluations.extend(rows.into_iter().map(|row| Ok(row.evaluation)));
                }
                ShardDone::Rows { .. } => {
                    for _ in 0..len {
                        evaluations.push(Err(CoreError::Remote {
                            code: E_REMOTE.to_string(),
                            message: format!(
                                "search `{}`: a worker returned a partial shard",
                                spec.name
                            ),
                        }));
                    }
                }
                ShardDone::Failed { code, message } => {
                    for _ in 0..len {
                        evaluations.push(Err(CoreError::Remote {
                            code: code.clone(),
                            message: message.clone(),
                        }));
                    }
                }
                ShardDone::Skipped => {
                    for _ in 0..len {
                        evaluations.push(Err(CoreError::Remote {
                            code: E_REMOTE.to_string(),
                            message: "a shard was abandoned before it completed".to_string(),
                        }));
                    }
                }
            }
        }
        Ok(evaluations)
    });

    let wall = start.elapsed().as_secs_f64();
    let perf =
        ResponsePerf::new(wall, request.serial).with_cluster(stats.perf(backend, world, wall));
    match result {
        Ok(outcome) => Response::new(
            request.id.clone(),
            "search",
            outcome.interrupted,
            perf,
            Ok(Payload::Search(Box::new(outcome.report))),
        ),
        Err(e) => Response::new(
            request.id.clone(),
            "search",
            false,
            perf,
            Err(ServiceError::from_core(&e)),
        ),
    }
}

/// Outcome of one shard set.
struct ShardSetOutcome {
    /// One entry per shard, in shard order.
    done: Vec<ShardDone>,
    /// Whether a cancel/deadline interrupted the set.
    interrupted: bool,
    /// Set when the set failed fatally: the typed code and message the job
    /// reports (today only [`E_SHARD_RETRY_EXHAUSTED`]).
    fatal: Option<(&'static str, String)>,
}

/// Runs one set of shards over the pool: at most one in-flight shard per
/// worker, supervised re-dispatch (with backoff) on worker death, hang or
/// garbled output, worker respawn, forwarding cancellation when an
/// `interrupt` is given, and reporting shard events through `on_signal`.
/// When the whole pool is gone and no respawn budget remains, the
/// remaining shards run in-process instead of failing the job.
fn execute_shards(
    cluster: &mut Cluster,
    shards: &[ShardSpec],
    interrupt: Option<&Interrupt<'_>>,
    stats: &mut ShardStats,
    mut on_signal: impl FnMut(usize, ShardSignal<'_>),
) -> ShardSetOutcome {
    let supervision = cluster.supervision;
    let mut done: Vec<Option<ShardDone>> = shards.iter().map(|_| None).collect();
    let mut queue: VecDeque<usize> = (0..shards.len()).collect();
    let mut retries = RetryState::new(shards.len());
    let mut interrupted = false;
    let mut interrupted_at: Option<Instant> = None;
    let mut fatal: Option<(&'static str, String)> = None;

    loop {
        // Cancellation/deadline: drop what has not started, tell every busy
        // worker to stop its shard at the next batch boundary, then keep
        // looping to collect the (partial) in-flight responses.
        if !interrupted && interrupt.is_some_and(Interrupt::triggered) {
            interrupted = true;
            interrupted_at = Some(Instant::now());
            while let Some(shard) = queue.pop_front() {
                done[shard] = Some(ShardDone::Skipped);
            }
            for slot in cluster.workers.iter_mut() {
                if slot.alive {
                    if let Some(shard) = slot.busy {
                        let _ = slot.tx.send_line(&cancel_line(&shards[shard].id));
                    }
                }
            }
        }

        if done.iter().all(Option::is_some) {
            break;
        }

        // Declare hung workers dead: a busy worker past its timeout edge is
        // killed, and its shard re-planned (or skipped after an interrupt —
        // the shard was cancelled; there is nothing left to compute).
        let now = Instant::now();
        let timed_out: Vec<(usize, usize)> = cluster
            .workers
            .iter()
            .enumerate()
            .filter(|(_, slot)| slot.alive)
            .filter_map(|(rank, slot)| {
                let (shard, since) = slot.busy.zip(slot.busy_since)?;
                let edge = busy_edge(since, &supervision, interrupted_at)?;
                (now >= edge).then_some((rank, shard))
            })
            .collect();
        for (rank, shard) in timed_out {
            let slot = &mut cluster.workers[rank];
            slot.alive = false;
            slot.busy = None;
            slot.busy_since = None;
            slot.tx.kill();
            if interrupted {
                let outcome = ShardDone::Skipped;
                on_signal(shard, ShardSignal::Done(&outcome));
                done[shard] = Some(outcome);
            } else if let Some(error) = retries.fault(
                shard,
                &format!("worker {rank} timed out mid-shard"),
                &supervision,
                &mut queue,
                stats,
            ) {
                fatal = Some(error);
            }
        }
        if fatal.is_some() {
            break;
        }

        // Replace dead workers while the respawn budget lasts, so the pool
        // recovers its parallelism instead of limping on survivors.
        stats.respawned += cluster.respawn_dead();

        // Fill idle workers with due shards (a requeued shard waits out its
        // backoff before re-dispatching).
        let now = Instant::now();
        for rank in 0..cluster.workers.len() {
            {
                let slot = &cluster.workers[rank];
                if !slot.alive || slot.busy.is_some() {
                    continue;
                }
            }
            let Some(pos) = queue.iter().position(|&s| retries.not_before[s] <= now) else {
                break;
            };
            let shard = queue.remove(pos).expect("position is in range");
            let line = dispatch_line(&shards[shard], interrupt);
            let slot = &mut cluster.workers[rank];
            match slot.tx.send_line(&line) {
                Ok(()) => {
                    slot.busy = Some(shard);
                    slot.busy_since = Some(Instant::now());
                }
                Err(_) => {
                    // Found out the worker is gone at send time; its Closed
                    // event (if any) is still coming, but the shard goes
                    // back to the front of the queue right away (the send
                    // never reached a worker, so it costs no retry).
                    slot.alive = false;
                    queue.push_front(shard);
                }
            }
        }

        // Pool fully lost with the respawn budget spent: finish the
        // remaining shards in-process through the ordinary Service path.
        // Slower, and without progress streaming for those shards — but the
        // merged response stays byte-identical, which beats failing the
        // job. (Interrupted sets never reach here: a dead worker's shard is
        // skipped, not requeued, once the interrupt fired.)
        if cluster.workers.iter().all(|slot| !slot.alive) && done.iter().any(Option::is_none) {
            while let Some(shard) = queue.pop_front() {
                if interrupt.is_some_and(Interrupt::triggered) {
                    done[shard] = Some(ShardDone::Skipped);
                    continue;
                }
                let started = Instant::now();
                let outcome = run_shard_locally(&shards[shard], interrupt);
                stats.dispatched += 1;
                stats.local_fallback += 1;
                stats.busy_seconds += started.elapsed().as_secs_f64();
                on_signal(shard, ShardSignal::Done(&outcome));
                done[shard] = Some(outcome);
            }
            continue;
        }

        // Deadline-aware wait: sleep exactly until the next actionable edge
        // — a busy worker's timeout, a backoff expiry, or the job deadline
        // — instead of polling on a fixed interval.
        let now = Instant::now();
        let mut wait = if interrupt.is_some() {
            // A cancel token can flip at any moment without an event.
            MAX_WAIT_INTERRUPTIBLE
        } else {
            MAX_WAIT
        };
        for slot in &cluster.workers {
            if !slot.alive {
                continue;
            }
            let Some(since) = slot.busy_since else {
                continue;
            };
            if let Some(edge) = busy_edge(since, &supervision, interrupted_at) {
                wait = wait.min(edge.saturating_duration_since(now));
            }
        }
        for &shard in &queue {
            wait = wait.min(retries.not_before[shard].saturating_duration_since(now));
        }
        if !interrupted {
            if let Some(deadline) = interrupt.and_then(|i| i.deadline) {
                wait = wait.min(deadline.saturating_duration_since(now));
            }
        }

        match cluster.events.recv_timeout(wait.max(MIN_WAIT)) {
            Ok(WorkerEvent::Line(rank, line)) => {
                let Some(shard) = cluster.workers[rank].busy else {
                    continue; // stray output from an idle worker
                };
                let Ok(value) = serde_json::from_str(&line) else {
                    continue;
                };
                if value.get("id").and_then(Value::as_str) != Some(shards[shard].id.as_str()) {
                    continue;
                }
                match value.get("type").and_then(Value::as_str) {
                    Some("progress") => on_signal(shard, ShardSignal::Progress(&value)),
                    Some("response") => {
                        let slot = &mut cluster.workers[rank];
                        slot.busy = None;
                        if let Some(since) = slot.busy_since.take() {
                            stats.busy_seconds += since.elapsed().as_secs_f64();
                        }
                        match decode_response(&value) {
                            Decoded::Done(outcome) => {
                                stats.dispatched += 1;
                                on_signal(shard, ShardSignal::Done(&outcome));
                                done[shard] = Some(outcome);
                            }
                            // A response the coordinator cannot decode is a
                            // worker fault, not a job error: re-dispatch
                            // (the worker stays alive — it answered).
                            Decoded::Garbled(reason) => {
                                if interrupted {
                                    let outcome = ShardDone::Skipped;
                                    on_signal(shard, ShardSignal::Done(&outcome));
                                    done[shard] = Some(outcome);
                                } else if let Some(error) = retries.fault(
                                    shard,
                                    &format!("worker {rank} answered garbage: {reason}"),
                                    &supervision,
                                    &mut queue,
                                    stats,
                                ) {
                                    fatal = Some(error);
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
            Ok(WorkerEvent::Closed(rank)) => {
                let slot = &mut cluster.workers[rank];
                slot.alive = false;
                slot.busy_since = None;
                if let Some(shard) = slot.busy.take() {
                    if interrupted {
                        let outcome = ShardDone::Skipped;
                        on_signal(shard, ShardSignal::Done(&outcome));
                        done[shard] = Some(outcome);
                    } else if let Some(error) = retries.fault(
                        shard,
                        &format!("worker {rank} died mid-shard"),
                        &supervision,
                        &mut queue,
                        stats,
                    ) {
                        fatal = Some(error);
                    }
                }
            }
            // Timeout: loop back around to re-check interrupts and edges.
            // Disconnection cannot happen (the cluster holds a keepalive
            // sender), but treat it like a timeout if it ever did.
            Err(_) => {}
        }
        if fatal.is_some() {
            break;
        }
    }

    if fatal.is_some() {
        // Fatal exit can leave live workers mid-shard: cancel their work so
        // the pool is reusable, and mark the abandoned shards. Late lines
        // from those shards are dropped by the id checks of the next set.
        for slot in cluster.workers.iter_mut() {
            if slot.alive {
                if let Some(shard) = slot.busy.take() {
                    let _ = slot.tx.send_line(&cancel_line(&shards[shard].id));
                }
                slot.busy_since = None;
            }
        }
        for done in done.iter_mut() {
            if done.is_none() {
                *done = Some(ShardDone::Skipped);
            }
        }
    }

    ShardSetOutcome {
        done: done
            .into_iter()
            .map(|d| d.expect("loop exits only once every shard is done"))
            .collect(),
        interrupted,
        fatal,
    }
}

/// Runs one shard in-process — the coordinator's last resort when the
/// whole pool is gone and the respawn budget is spent. The shard executes
/// through the ordinary [`Service`] path on the exact request a worker
/// would have received (remaining deadline included), so its rows are the
/// rows a worker would have produced.
fn run_shard_locally(shard: &ShardSpec, interrupt: Option<&Interrupt<'_>>) -> ShardDone {
    let line = dispatch_line(shard, interrupt);
    let request = match SessionLine::from_json(&line) {
        Ok(SessionLine::Request(request)) => request,
        _ => {
            return ShardDone::Failed {
                code: E_REMOTE.to_string(),
                message: "internal: a shard request did not parse back".to_string(),
            }
        }
    };
    let fresh;
    let handle = match interrupt {
        Some(interrupt) => interrupt.handle,
        None => {
            fresh = JobHandle::new();
            &fresh
        }
    };
    let sink = OptionalSink::<std::io::Sink> {
        id: &shard.id,
        out: None,
    };
    let response = Service::new().run(&request, handle, &sink);
    match decode_response(&response.to_value()) {
        Decoded::Done(done) => done,
        Decoded::Garbled(reason) => ShardDone::Failed {
            code: E_REMOTE.to_string(),
            message: format!("local fallback produced an undecodable response: {reason}"),
        },
    }
}

/// Builds a shard's sweep request object (without a deadline; the remaining
/// deadline is attached per dispatch).
fn shard_request(id: &str, serial: bool, sweep: Value) -> Value {
    Value::Object(vec![
        (
            "protocol_version".to_string(),
            Value::UInt(PROTOCOL_VERSION),
        ),
        ("id".to_string(), Value::Str(id.to_string())),
        ("kind".to_string(), Value::Str("sweep".to_string())),
        ("serial".to_string(), Value::Bool(serial)),
        ("sweep".to_string(), sweep),
    ])
}

/// Renders a shard's dispatch line, attaching the job's remaining deadline
/// so a re-dispatched shard never outlives the job's budget.
fn dispatch_line(shard: &ShardSpec, interrupt: Option<&Interrupt<'_>>) -> String {
    let mut body = shard.body.clone();
    if let Some(ms) = interrupt.and_then(Interrupt::remaining_ms) {
        if let Value::Object(entries) = &mut body {
            entries.push(("deadline_ms".to_string(), Value::UInt(ms)));
        }
    }
    serde_json::to_string(&body).expect("request values serialise")
}

fn cancel_line(id: &str) -> String {
    serde_json::to_string(&Value::Object(vec![
        (
            "protocol_version".to_string(),
            Value::UInt(PROTOCOL_VERSION),
        ),
        ("cancel".to_string(), Value::Str(id.to_string())),
    ]))
    .expect("cancel lines serialise")
}

/// What a worker's response line decoded into.
enum Decoded {
    /// A decodable response: the shard's outcome.
    Done(ShardDone),
    /// Output that is not a usable response — `status: "ok"` without
    /// decodable results, or no recognisable status at all. A supervision
    /// fault (re-dispatch), distinct from a typed job error.
    Garbled(String),
}

/// Decodes a worker's response line into the shard's outcome.
fn decode_response(value: &Value) -> Decoded {
    let cancelled = matches!(value.get("cancelled"), Some(Value::Bool(true)));
    match value.get("status").and_then(Value::as_str) {
        Some("ok") => match value
            .get("result")
            .and_then(|r| r.get("results"))
            .map(wire::sweep_results_from_value)
        {
            Some(Ok(results)) => Decoded::Done(ShardDone::Rows {
                rows: results.rows,
                cancelled,
            }),
            Some(Err(e)) => Decoded::Garbled(format!("sweep results did not decode: {e}")),
            None => Decoded::Garbled("the response carried no sweep results".to_string()),
        },
        Some("error") => {
            let field = |key: &str| {
                value
                    .get("error")
                    .and_then(|e| e.get(key))
                    .and_then(Value::as_str)
            };
            Decoded::Done(ShardDone::Failed {
                code: field("code").unwrap_or(E_REMOTE).to_string(),
                message: field("message")
                    .unwrap_or("worker reported an error")
                    .to_string(),
            })
        }
        _ => Decoded::Garbled("the response carried no status".to_string()),
    }
}

/// Re-tags a worker's `row_completed` line with the parent job's id and the
/// point's global index/total. Other progress lines map to `None`.
fn patch_row_line(value: &Value, id: &str, offset: usize, total: usize) -> Option<String> {
    if value.get("event").and_then(Value::as_str) != Some("row_completed") {
        return None;
    }
    let Value::Object(entries) = value else {
        return None;
    };
    let patched: Vec<(String, Value)> = entries
        .iter()
        .map(|(key, v)| {
            let v = match key.as_str() {
                "id" => Value::Str(id.to_string()),
                "index" => Value::UInt(v.as_u64().unwrap_or(0) + offset as u64),
                "total" => Value::UInt(total as u64),
                _ => v.clone(),
            };
            (key.clone(), v)
        })
        .collect();
    serde_json::to_string(&Value::Object(patched)).ok()
}

/// Writes one NDJSON line, flushing immediately (the serve-session
/// guarantee: lines are visible the moment their event happens).
fn emit_line<W: Write>(out: Option<&Mutex<W>>, text: &str) {
    if let Some(out) = out {
        let mut out = out.lock().unwrap_or_else(|e| e.into_inner());
        let _ = writeln!(out, "{text}");
        let _ = out.flush();
    }
}

/// A [`ProgressSink`] over an optional shared writer: the coordinator's
/// local search fold streams through this, and `msfu run --workers` without
/// `--progress` passes `None`.
struct OptionalSink<'a, W: Write> {
    id: &'a str,
    out: Option<&'a Mutex<W>>,
}

impl<W: Write> ProgressSink for OptionalSink<'_, W> {
    fn emit(&self, event: &ProgressEvent<'_>) {
        if let Ok(text) = serde_json::to_string(&progress_to_value(self.id, event)) {
            emit_line(self.out, &text);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{serve, ServeOptions};

    /// Runs one serve session over the given lines and returns its parsed
    /// output lines.
    fn session(options: &ServeOptions, lines: &str) -> Vec<Value> {
        let mut output: Vec<u8> = Vec::new();
        let input = std::io::Cursor::new(lines.to_string().into_bytes());
        serve(input, &mut output, options).unwrap();
        String::from_utf8(output)
            .unwrap()
            .lines()
            .map(|l| serde_json::from_str(l).expect("output lines are JSON"))
            .collect()
    }

    fn response_of<'a>(values: &'a [Value], id: &str) -> &'a Value {
        values
            .iter()
            .find(|v| {
                v.get("type").and_then(Value::as_str) == Some("response")
                    && v.get("id").and_then(Value::as_str) == Some(id)
            })
            .expect("session produced the response")
    }

    /// The fields of a response that must be byte-identical between serial
    /// and sharded execution (everything except the perf stamp).
    fn stable_fields(response: &Value) -> String {
        let stripped: Vec<(String, Value)> = match response {
            Value::Object(entries) => entries
                .iter()
                .filter(|(k, _)| k != "perf")
                .cloned()
                .collect(),
            _ => panic!("responses are objects"),
        };
        serde_json::to_string(&Value::Object(stripped)).unwrap()
    }

    fn cluster_perf_of<'a>(response: &'a Value, key: &str) -> &'a Value {
        response
            .get("perf")
            .and_then(|p| p.get("cluster"))
            .and_then(|c| c.get(key))
            .expect("clustered responses carry perf.cluster")
    }

    const SWEEP_LINE: &str = concat!(
        r#"{"protocol_version": 1, "id": "j", "kind": "sweep", "sweep": {"name": "t", "points": ["#,
        r#"{"label": "p0", "factory": {"k": 2}, "strategy": {"strategy": "linear"}},"#,
        r#"{"label": "p1", "factory": {"k": 2}, "strategy": {"strategy": "random", "seed": 1}},"#,
        r#"{"label": "p2", "factory": {"k": 3}, "strategy": {"strategy": "random", "seed": 2, "expansion": 1.5}},"#,
        r#"{"label": "p3", "factory": {"k": 2, "reuse": "NR"}, "strategy": {"strategy": "linear"}},"#,
        r#"{"label": "p4", "factory": {"k": 2}, "strategy": {"strategy": "graph_partition", "seed": 3}}]}}"#,
        "\n",
    );

    const SEARCH_LINE: &str = concat!(
        r#"{"protocol_version": 1, "id": "s", "kind": "search", "search": {"#,
        r#""name": "srch", "factory": {"k": 2}, "budget": 10, "batch_size": 4, "seed": 7,"#,
        r#""portfolio": [{"strategy": {"strategy": "random"}, "seeded": true},"#,
        r#"{"strategy": {"strategy": "linear"}, "seeded": false}]}}"#,
        "\n",
    );

    #[test]
    fn sharded_sweep_is_byte_identical_to_serial_at_any_worker_count() {
        let serial = session(&ServeOptions::new(), SWEEP_LINE);
        let reference = stable_fields(response_of(&serial, "j"));
        assert!(reference.contains(r#""status":"ok""#), "{reference}");
        for workers in [1, 2, 4, 7] {
            let clustered = session(&ServeOptions::new().with_workers(workers), SWEEP_LINE);
            let response = response_of(&clustered, "j");
            assert_eq!(
                stable_fields(response),
                reference,
                "workers={workers} diverged"
            );
            assert_eq!(
                cluster_perf_of(response, "workers"),
                &Value::UInt(workers as u64)
            );
            assert_eq!(cluster_perf_of(response, "shards_retried"), &Value::UInt(0));
        }
    }

    #[test]
    fn sharded_search_is_byte_identical_to_serial_at_any_worker_count() {
        let serial = session(&ServeOptions::new(), SEARCH_LINE);
        let reference = stable_fields(response_of(&serial, "s"));
        assert!(reference.contains(r#""incumbent""#), "{reference}");
        for workers in [1, 2, 4] {
            let clustered = session(&ServeOptions::new().with_workers(workers), SEARCH_LINE);
            assert_eq!(
                stable_fields(response_of(&clustered, "s")),
                reference,
                "workers={workers} diverged"
            );
        }
    }

    #[test]
    fn clustered_sweep_streams_patched_row_progress_and_merged_batches() {
        let clustered = session(&ServeOptions::new().with_workers(2), SWEEP_LINE);
        let rows: Vec<&Value> = clustered
            .iter()
            .filter(|v| v.get("event").and_then(Value::as_str) == Some("row_completed"))
            .collect();
        assert_eq!(rows.len(), 5, "one row event per point");
        let mut indices: Vec<u64> = rows
            .iter()
            .map(|v| {
                assert_eq!(v.get("id").and_then(Value::as_str), Some("j"));
                assert_eq!(v.get("total").and_then(Value::as_u64), Some(5));
                v.get("index").and_then(Value::as_u64).unwrap()
            })
            .collect();
        indices.sort_unstable();
        assert_eq!(indices, vec![0, 1, 2, 3, 4], "global indices, each once");
        let last_batch = clustered
            .iter()
            .rfind(|v| v.get("event").and_then(Value::as_str) == Some("batch_finished"))
            .expect("coordinator emits merged batch events");
        assert_eq!(last_batch.get("completed").and_then(Value::as_u64), Some(5));
        assert_eq!(last_batch.get("total").and_then(Value::as_u64), Some(5));
    }

    #[test]
    fn a_worker_crash_re_dispatches_its_shard_and_rows_are_identical() {
        let serial = session(&ServeOptions::new(), SWEEP_LINE);
        let reference = stable_fields(response_of(&serial, "j"));
        // Rank 1 dies upon receiving its first request, so its shard must
        // be re-dispatched (no respawn budget: recovery must work on the
        // survivors alone).
        let options = ServeOptions::new()
            .with_workers(2)
            .with_fault(1, 0)
            .with_max_respawns(0);
        let faulted = session(&options, SWEEP_LINE);
        let response = response_of(&faulted, "j");
        assert_eq!(stable_fields(response), reference, "recovered run diverged");
        let retried = cluster_perf_of(response, "shards_retried")
            .as_u64()
            .unwrap();
        assert!(retried >= 1, "the lost shard counts as retried");
    }

    #[test]
    fn a_crashed_worker_is_respawned_and_rows_are_identical() {
        let serial = session(&ServeOptions::new(), SWEEP_LINE);
        let reference = stable_fields(response_of(&serial, "j"));
        // Rank 1 dies on its first request; the default respawn budget (one
        // per configured worker) replaces it with a clean worker at a fresh
        // rank, so the pool recovers its parallelism.
        let options = ServeOptions::new().with_workers(2).with_fault(1, 0);
        let respawned = session(&options, SWEEP_LINE);
        let response = response_of(&respawned, "j");
        assert_eq!(stable_fields(response), reference, "respawned run diverged");
        let respawns = cluster_perf_of(response, "workers_respawned")
            .as_u64()
            .unwrap();
        assert!(respawns >= 1, "the dead worker was replaced");
        assert_eq!(
            cluster_perf_of(response, "workers"),
            &Value::UInt(2),
            "the plan still uses the configured pool size"
        );
    }

    #[test]
    fn losing_every_worker_falls_back_to_in_process_execution() {
        let serial = session(&ServeOptions::new(), SWEEP_LINE);
        let reference = stable_fields(response_of(&serial, "j"));
        // The whole pool is one worker, it dies on its first request, and
        // no respawns are allowed: the coordinator must finish the job
        // in-process rather than fail it.
        let options = ServeOptions::new()
            .with_workers(1)
            .with_fault(0, 0)
            .with_max_respawns(0);
        let values = session(&options, SWEEP_LINE);
        let response = response_of(&values, "j");
        assert_eq!(stable_fields(response), reference, "fallback run diverged");
        let fallback = cluster_perf_of(response, "shards_local_fallback")
            .as_u64()
            .unwrap();
        assert!(fallback >= 1, "remaining shards ran in-process");
    }

    #[test]
    fn a_stalled_worker_times_out_and_its_shard_is_re_dispatched() {
        let serial = session(&ServeOptions::new(), SWEEP_LINE);
        let reference = stable_fields(response_of(&serial, "j"));
        // Rank 1 hangs forever on its first request. The shard timeout
        // declares it dead; its shard re-dispatches to rank 0 and the
        // merged rows stay byte-identical.
        let plan = FaultPlan::new().with_stall(1, 0, 60_000);
        let options = ServeOptions::new()
            .with_workers(2)
            .with_fault_plan(plan)
            .with_shard_timeout_ms(150)
            .with_max_respawns(0);
        let values = session(&options, SWEEP_LINE);
        let response = response_of(&values, "j");
        assert_eq!(stable_fields(response), reference, "recovered run diverged");
        let retried = cluster_perf_of(response, "shards_retried")
            .as_u64()
            .unwrap();
        assert!(retried >= 1, "the timed-out shard counts as retried");
    }

    #[test]
    fn a_stall_outlasting_every_retry_fails_typed_instead_of_hanging() {
        // One point, so one shard; both workers hang forever; retry budget
        // of 1 and no respawns. The first timeout consumes the budget's one
        // re-dispatch, the second exhausts it — the job must come back as a
        // typed E_SHARD_RETRY_EXHAUSTED error within a bounded time, never
        // hang.
        let line = concat!(
            r#"{"protocol_version": 1, "id": "x", "kind": "sweep", "sweep": {"name": "t", "points": [{"label": "p", "factory": {"k": 2}, "strategy": {"strategy": "linear"}}]}}"#,
            "\n",
        );
        let plan = FaultPlan::new()
            .with_stall(0, 0, 60_000)
            .with_stall(1, 0, 60_000);
        let options = ServeOptions::new()
            .with_workers(2)
            .with_fault_plan(plan)
            .with_shard_timeout_ms(100)
            .with_retry_budget(1)
            .with_max_respawns(0);
        let started = Instant::now();
        let values = session(&options, line);
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "exhaustion must resolve long before the stalls would"
        );
        let response = response_of(&values, "x");
        assert_eq!(
            response.get("status").and_then(Value::as_str),
            Some("error")
        );
        assert_eq!(
            response
                .get("error")
                .and_then(|e| e.get("code"))
                .and_then(Value::as_str),
            Some(E_SHARD_RETRY_EXHAUSTED)
        );
        let retried = cluster_perf_of(response, "shards_retried")
            .as_u64()
            .unwrap();
        assert!(retried >= 2, "both timeouts count as retries");
    }

    #[test]
    fn a_garbled_response_is_retried_and_rows_are_identical() {
        let serial = session(&ServeOptions::new(), SWEEP_LINE);
        let reference = stable_fields(response_of(&serial, "j"));
        // Rank 1 answers its first request with an undecodable response
        // line. The coordinator books a retry (the worker stays alive) and
        // the re-dispatched shard completes normally.
        let plan = FaultPlan::new().with_corrupt_response(1, 0);
        let options = ServeOptions::new()
            .with_workers(2)
            .with_fault_plan(plan)
            .with_max_respawns(0);
        let values = session(&options, SWEEP_LINE);
        let response = response_of(&values, "j");
        assert_eq!(stable_fields(response), reference, "recovered run diverged");
        let retried = cluster_perf_of(response, "shards_retried")
            .as_u64()
            .unwrap();
        assert!(retried >= 1, "the garbled shard counts as retried");
    }

    #[test]
    fn pre_cancel_and_zero_deadline_reach_the_whole_pool() {
        let pre_cancel = concat!(
            r#"{"protocol_version": 1, "cancel": "j"}"#,
            "\n",
            r#"{"protocol_version": 1, "id": "j", "kind": "sweep", "sweep": {"name": "t", "points": [{"label": "p", "factory": {"k": 2}, "strategy": {"strategy": "linear"}}]}}"#,
            "\n",
        );
        let values = session(&ServeOptions::new().with_workers(2), pre_cancel);
        let response = response_of(&values, "j");
        assert_eq!(response.get("cancelled"), Some(&Value::Bool(true)));
        let rows = response
            .get("result")
            .and_then(|r| r.get("results"))
            .and_then(|r| r.get("rows"))
            .and_then(Value::as_array)
            .expect("cancelled sweeps report partial rows");
        assert!(rows.is_empty(), "nothing ran before the cancel");

        let deadline = concat!(
            r#"{"protocol_version": 1, "id": "d", "kind": "sweep", "deadline_ms": 0, "sweep": {"name": "t", "points": [{"label": "p", "factory": {"k": 2}, "strategy": {"strategy": "linear"}}]}}"#,
            "\n",
        );
        let values = session(&ServeOptions::new().with_workers(2), deadline);
        let response = response_of(&values, "d");
        assert_eq!(response.get("cancelled"), Some(&Value::Bool(true)));
    }

    #[test]
    fn a_deadline_over_a_stalled_pool_terminates_within_the_grace_period() {
        // Every worker hangs forever and no shard timeout is configured:
        // only the job deadline interrupts, and the post-interrupt grace
        // must kill the hung workers instead of waiting for responses that
        // will never come.
        let line = concat!(
            r#"{"protocol_version": 1, "id": "g", "kind": "sweep", "deadline_ms": 100, "sweep": {"name": "t", "points": [{"label": "p", "factory": {"k": 2}, "strategy": {"strategy": "linear"}}]}}"#,
            "\n",
        );
        let plan = FaultPlan::new()
            .with_stall(0, 0, 60_000)
            .with_stall(1, 0, 60_000);
        let options = ServeOptions::new()
            .with_workers(2)
            .with_fault_plan(plan)
            .with_max_respawns(0);
        let started = Instant::now();
        let values = session(&options, line);
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "the session must not wait out the stalls"
        );
        let response = response_of(&values, "g");
        assert_eq!(response.get("cancelled"), Some(&Value::Bool(true)));
    }

    #[test]
    fn errors_keep_their_serial_codes_and_messages_across_the_cluster() {
        // k=0 fails factory validation inside a worker; the coordinator
        // must surface the exact serial code and message.
        let line = concat!(
            r#"{"protocol_version": 1, "id": "bad", "kind": "sweep", "sweep": {"name": "t", "points": [{"label": "p", "factory": {"capacity": 0}, "strategy": {"strategy": "linear"}}]}}"#,
            "\n",
        );
        let serial = session(&ServeOptions::new(), line);
        let clustered = session(&ServeOptions::new().with_workers(2), line);
        assert_eq!(
            stable_fields(response_of(&serial, "bad")),
            stable_fields(response_of(&clustered, "bad"))
        );
    }
}
