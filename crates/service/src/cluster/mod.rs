//! Multi-worker coordination: sharded sweeps and searches with a
//! deterministic merge.
//!
//! `msfu serve --workers N` (and `msfu run --workers N`) turns one process
//! into a *coordinator* over a pool of N workers, each an ordinary serve
//! session reached through a [`ClusterBackend`]:
//!
//! ```text
//!             requests / cancels (NDJSON)
//!   client ──────────► coordinator ──┬──► worker 0  (serve loop)
//!                      │   ▲         ├──► worker 1  (serve loop)
//!                      │   └─────────┴──── lines + Closed events
//!                      ▼
//!             merged progress + one response per request
//! ```
//!
//! The layering mirrors MPI launchers: [`planner`](self) decides *what* the
//! shards are (a pure function of spec and pool size), `comm` decides *how*
//! bytes reach a worker (in-process threads or child processes today; a TCP
//! backend would slot in beside them), and the coordinator in between owns
//! scheduling, supervision and the order-preserving merge. Supervision
//! ([`Supervision`]) treats worker death, hangs past the shard timeout and
//! garbled responses uniformly: each costs one unit of the shard's retry
//! budget and re-dispatches with exponential backoff, dead workers are
//! replaced by clean respawns while the respawn budget lasts, a shard whose
//! budget is spent fails the job typed with `E_SHARD_RETRY_EXHAUSTED`, and
//! a fully lost pool degrades to in-process execution instead of failing.
//! Because workers run the exact single-process engine on exact sub-specs
//! and the merge walks shards in plan order, a coordinated job's rows,
//! incumbents and error codes are byte-identical to a serial run — `perf`
//! is the only field allowed to differ.

mod comm;
mod coordinator;
mod planner;

pub use crate::faults::ENV_WORKER_FAULT;
pub use comm::{ClusterBackend, WorkerEvent, WorkerFault, WorkerTx, ENV_EXIT_AFTER_JOBS};
pub use coordinator::{run_clustered, Cluster, Supervision};
pub use planner::shard_ranges;
