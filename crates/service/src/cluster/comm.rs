//! Communicator backends: how a coordinator reaches its worker pool.
//!
//! The split mirrors MPI-style launchers: *what* the coordinator says to a
//! worker (NDJSON serve-session lines) is fixed by the protocol, while *how*
//! the bytes move is a backend choice behind [`connect`]:
//!
//! * [`ClusterBackend::LocalThreads`] — each worker is an in-process thread
//!   running its own [`serve`](crate::serve) loop over channels. Zero
//!   process overhead; this is what unit tests use, and what keeps the
//!   cluster testable under `cargo test` (where `current_exe` is the test
//!   binary, not `msfu`).
//! * [`ClusterBackend::ChildProcess`] — each worker is a child `msfu serve`
//!   process over stdio pipes. This is what `msfu --workers N` spawns; a
//!   TCP backend would slot in beside these without touching the
//!   coordinator.
//!
//! Every backend funnels worker output into one shared [`WorkerEvent`]
//! channel (lines tagged with the worker's rank, plus a `Closed` marker when
//! a worker's output ends), and exposes a per-worker [`WorkerTx`] for
//! request/cancel lines. Worker death is detected uniformly as
//! [`WorkerEvent::Closed`], whatever the backend.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, Command, Stdio};
use std::sync::mpsc;
use std::thread;

use crate::faults::{FaultPlan, WorkerFaultSpec, ENV_WORKER_FAULT};
use crate::serve::{serve, ServeOptions};

/// Deprecated alias of [`ENV_WORKER_FAULT`]'s crash entry: a spawned worker
/// that sees this variable exits (without responding) upon receiving its
/// `N+1`-th request. Kept for one release; declare crashes in a
/// [`FaultPlan`] instead.
pub const ENV_EXIT_AFTER_JOBS: &str = "MSFU_SERVE_EXIT_AFTER_JOBS";

/// Legacy crash fault: worker `rank` exits without responding upon
/// receiving its `after_jobs + 1`-th request. Thin alias for one release —
/// it converts into a crash-only [`FaultPlan`], which is what the runtime
/// executes; declare new faults in a plan directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerFault {
    /// The rank of the worker to kill.
    pub rank: usize,
    /// How many requests the worker serves normally before dying on the
    /// next one (`0` = die on its very first request).
    pub after_jobs: usize,
}

impl From<WorkerFault> for FaultPlan {
    fn from(fault: WorkerFault) -> FaultPlan {
        FaultPlan::new().with_crash(fault.rank, fault.after_jobs)
    }
}

/// Which communicator a coordinator uses to reach its workers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClusterBackend {
    /// In-process worker threads, each running its own serve loop over
    /// channels (the default, and the backend unit tests use).
    #[default]
    LocalThreads,
    /// One child `<exe> serve` process per worker, over stdio pipes.
    ChildProcess {
        /// The executable to spawn (normally `std::env::current_exe()`).
        exe: PathBuf,
    },
}

impl ClusterBackend {
    /// The backend's name as stamped under `perf.cluster.backend`.
    pub fn name(&self) -> &'static str {
        match self {
            ClusterBackend::LocalThreads => "local-threads",
            ClusterBackend::ChildProcess { .. } => "child-process",
        }
    }
}

/// One line (or EOF) of worker output, tagged with the worker's rank.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkerEvent {
    /// One complete NDJSON line (a progress event or a response).
    Line(usize, String),
    /// The worker's output closed: it exited, crashed, or finished its
    /// session. A worker never speaks again after this.
    Closed(usize),
}

/// The coordinator's sending half of one worker connection.
pub trait WorkerTx: Send {
    /// Sends one NDJSON line (a request or a cancel) to the worker.
    ///
    /// # Errors
    ///
    /// Fails when the worker is gone (its input pipe closed); the
    /// coordinator then marks the worker dead and re-plans.
    fn send_line(&mut self, line: &str) -> io::Result<()>;

    /// Forcibly terminates the worker, when the backend can (a child
    /// process is killed; a thread worker merely stops being read — its
    /// input closes when the `WorkerTx` drops). Called by the supervisor
    /// when it declares a stalled worker dead, so a hung child does not
    /// outlive the session.
    fn kill(&mut self) {}
}

/// Connects `workers` workers of the given backend, funnelling all their
/// output into `events`. Each rank receives its slice of the fault plan.
///
/// # Errors
///
/// Fails when a child process cannot be spawned; `LocalThreads` is
/// infallible.
pub(crate) fn connect(
    backend: &ClusterBackend,
    workers: usize,
    plan: Option<&FaultPlan>,
    events: &mpsc::Sender<WorkerEvent>,
) -> io::Result<Vec<Box<dyn WorkerTx>>> {
    (0..workers)
        .map(|rank| {
            let fault = plan.map_or_else(WorkerFaultSpec::default, |p| p.worker_fault(rank));
            connect_rank(backend, rank, fault, events.clone())
        })
        .collect()
}

/// Connects a single worker at `rank` — what [`connect`] loops over, and
/// what the supervisor calls to respawn a replacement (respawns get an
/// empty fault spec: a replacement must be clean or recovery could loop).
pub(crate) fn connect_rank(
    backend: &ClusterBackend,
    rank: usize,
    fault: WorkerFaultSpec,
    events: mpsc::Sender<WorkerEvent>,
) -> io::Result<Box<dyn WorkerTx>> {
    match backend {
        ClusterBackend::LocalThreads => Ok(connect_thread(rank, fault, events)),
        ClusterBackend::ChildProcess { exe } => connect_child(exe, rank, fault, events),
    }
}

fn connect_thread(
    rank: usize,
    fault: WorkerFaultSpec,
    events: mpsc::Sender<WorkerEvent>,
) -> Box<dyn WorkerTx> {
    let (tx, rx) = mpsc::channel::<Vec<u8>>();
    let options = ServeOptions::new().with_worker_fault(fault);
    thread::spawn(move || {
        let input = BufReader::new(ChannelReader {
            rx,
            buf: Vec::new(),
            pos: 0,
        });
        let output = EventWriter {
            rank,
            events,
            buf: Vec::new(),
        };
        // The session result is irrelevant here: worker death of any kind
        // surfaces as `Closed` when `output` drops at the end of this
        // thread (panics included — unwinding drops it too).
        let _ = serve(input, output, &options);
    });
    Box::new(ChannelTx { tx })
}

fn connect_child(
    exe: &std::path::Path,
    rank: usize,
    fault: WorkerFaultSpec,
    events: mpsc::Sender<WorkerEvent>,
) -> io::Result<Box<dyn WorkerTx>> {
    let mut command = Command::new(exe);
    command
        .arg("serve")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        // Never let coordinator-level fault hooks leak into grandchildren.
        .env_remove("MSFU_FAULT_WORKER_RANK")
        .env_remove("MSFU_FAULT_AFTER_JOBS")
        .env_remove("MSFU_FAULT_PLAN")
        .env_remove(ENV_EXIT_AFTER_JOBS)
        .env_remove(ENV_WORKER_FAULT);
    if !fault.is_empty() {
        command.env(ENV_WORKER_FAULT, fault.to_json());
    }
    let mut child = command.spawn()?;
    let stdin = child.stdin.take().expect("stdin was piped");
    let stdout = child.stdout.take().expect("stdout was piped");
    thread::spawn(move || {
        for line in BufReader::new(stdout).lines() {
            let Ok(line) = line else { break };
            if events.send(WorkerEvent::Line(rank, line)).is_err() {
                break;
            }
        }
        let _ = events.send(WorkerEvent::Closed(rank));
    });
    Ok(Box::new(ChildTx { stdin, child }))
}

/// `Read` over an `mpsc` byte channel: the input half of a thread worker.
struct ChannelReader {
    rx: mpsc::Receiver<Vec<u8>>,
    buf: Vec<u8>,
    pos: usize,
}

impl Read for ChannelReader {
    fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
        while self.pos >= self.buf.len() {
            match self.rx.recv() {
                Ok(chunk) => {
                    self.buf = chunk;
                    self.pos = 0;
                }
                // Sender dropped: the coordinator closed this worker's
                // input, which is EOF exactly like a closed pipe.
                Err(mpsc::RecvError) => return Ok(0),
            }
        }
        let n = out.len().min(self.buf.len() - self.pos);
        out[..n].copy_from_slice(&self.buf[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// `Write` turning a thread worker's output into [`WorkerEvent::Line`]s,
/// announcing [`WorkerEvent::Closed`] when dropped (i.e. when the worker's
/// serve loop returns, however it returns).
struct EventWriter {
    rank: usize,
    events: mpsc::Sender<WorkerEvent>,
    buf: Vec<u8>,
}

impl Write for EventWriter {
    fn write(&mut self, bytes: &[u8]) -> io::Result<usize> {
        self.buf.extend_from_slice(bytes);
        while let Some(nl) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=nl).take(nl).collect();
            let text = String::from_utf8_lossy(&line).into_owned();
            let _ = self.events.send(WorkerEvent::Line(self.rank, text));
        }
        Ok(bytes.len())
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl Drop for EventWriter {
    fn drop(&mut self) {
        let _ = self.events.send(WorkerEvent::Closed(self.rank));
    }
}

/// Sending half of a thread worker: chunks of bytes over a channel.
struct ChannelTx {
    tx: mpsc::Sender<Vec<u8>>,
}

impl WorkerTx for ChannelTx {
    fn send_line(&mut self, line: &str) -> io::Result<()> {
        let mut bytes = Vec::with_capacity(line.len() + 1);
        bytes.extend_from_slice(line.as_bytes());
        bytes.push(b'\n');
        self.tx
            .send(bytes)
            .map_err(|_| io::Error::new(io::ErrorKind::BrokenPipe, "worker thread exited"))
    }
}

/// Sending half of a child-process worker; reaps the child on drop.
struct ChildTx {
    stdin: ChildStdin,
    child: Child,
}

impl WorkerTx for ChildTx {
    fn send_line(&mut self, line: &str) -> io::Result<()> {
        self.stdin.write_all(line.as_bytes())?;
        self.stdin.write_all(b"\n")?;
        self.stdin.flush()
    }

    fn kill(&mut self) {
        // A stalled child declared dead must not linger past the session;
        // Drop's kill+wait still runs later, this just makes it immediate.
        let _ = self.child.kill();
    }
}

impl Drop for ChildTx {
    fn drop(&mut self) {
        // Idle workers exit on stdin EOF by themselves; kill() covers a
        // wedged one, and wait() reaps either way (no zombies).
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}
