//! Deterministic fault injection for the supervised cluster runtime.
//!
//! A [`FaultPlan`] declares, up front and reproducibly, every failure a test
//! or chaos run wants the runtime to suffer: worker **crashes** (the process
//! exits without responding), worker **stalls** (the worker hangs instead of
//! answering — the supervision timeout must catch it), **corrupt responses**
//! (one garbled protocol line the coordinator must retry), and **cache
//! corruption** (a persist-tier segment damaged before the run, exercising
//! quarantine and self-healing). Plans are plain JSON so the CI chaos jobs
//! and the `--fault-plan` CLI flag share one schema:
//!
//! ```json
//! {"seed": 7,
//!  "crash": [{"rank": 1, "after_jobs": 0}],
//!  "stall": [{"rank": 0, "after_jobs": 1, "duration_ms": 60000}],
//!  "corrupt_response": [{"rank": 2, "after_jobs": 0}],
//!  "cache_corrupt": [{"segment": 3, "mode": "truncate"}]}
//! ```
//!
//! Every list is optional and empty by default. `seed` (default 0) drives
//! the choice of victim record for cache corruption — two runs of the same
//! plan damage the same bytes. `mode` is one of `"truncate"` (cut the
//! segment mid-record), `"flip"` (overwrite payload bytes so a record stops
//! decoding) or `"bad_version"` (stamp a format version this build does not
//! read).
//!
//! Worker-side faults (crash, stall, corrupt_response) are sliced per rank
//! by [`FaultPlan::worker_fault`] and delivered to thread workers directly
//! and to child-process workers via the `MSFU_WORKER_FAULT` environment
//! variable. `after_jobs` counts the requests a worker serves before the
//! fault arms: a crash exits on request `after_jobs + 1`, a stall hangs on
//! that request **and every later one** (a hung worker stays hung), and a
//! corrupt response garbles exactly that one response, then behaves
//! normally.
//!
//! The invariant the whole module exists to test: under any plan the retry
//! budget survives, sweep/search results stay byte-identical to a serial
//! run — only `perf.cluster` may differ.

use std::path::{Path, PathBuf};

use serde_json::Value;

use msfu_core::{damage_segment, SegmentDamage};

/// Environment variable carrying a child worker's [`WorkerFaultSpec`] as
/// JSON (set by the coordinator's backend, read by `msfu serve`).
pub const ENV_WORKER_FAULT: &str = "MSFU_WORKER_FAULT";

/// A worker crash: the worker exits without responding upon receiving its
/// `after_jobs + 1`-th request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashFault {
    /// The worker rank to kill.
    pub rank: usize,
    /// Requests the worker serves normally before crashing.
    pub after_jobs: usize,
}

/// A worker stall: from its `after_jobs + 1`-th request on, the worker
/// sleeps `duration_ms` before serving each request — to the coordinator it
/// looks hung, which is exactly what the shard timeout must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StallFault {
    /// The worker rank to hang.
    pub rank: usize,
    /// Requests the worker serves normally before stalling.
    pub after_jobs: usize,
    /// How long each stalled request hangs, in milliseconds.
    pub duration_ms: u64,
}

/// A corrupt response: the worker answers its `after_jobs + 1`-th request
/// with one garbled protocol line (then behaves normally). Always
/// survivable by a re-dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptResponseFault {
    /// The worker rank that garbles.
    pub rank: usize,
    /// Requests the worker serves normally before garbling one.
    pub after_jobs: usize,
}

/// Persist-tier corruption: segment `segment % NUM_BUCKETS` of the run's
/// cache directory is damaged before the session starts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheCorruptFault {
    /// The segment bucket to damage (taken modulo
    /// [`msfu_core::NUM_BUCKETS`]).
    pub segment: usize,
    /// How to damage it.
    pub mode: SegmentDamage,
}

/// A seeded, JSON-declarable set of faults to inject into one run — see the
/// [module docs](self) for the schema and semantics.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FaultPlan {
    /// Drives victim-record choice for cache corruption (and any future
    /// randomized fault), so a plan damages the same bytes every run.
    pub seed: u64,
    /// Worker crashes.
    pub crash: Vec<CrashFault>,
    /// Worker stalls.
    pub stall: Vec<StallFault>,
    /// Garbled worker responses.
    pub corrupt_response: Vec<CorruptResponseFault>,
    /// Persist-tier segment damage.
    pub cache_corrupt: Vec<CacheCorruptFault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Whether the plan injects nothing at all.
    pub fn is_empty(&self) -> bool {
        self.crash.is_empty()
            && self.stall.is_empty()
            && self.corrupt_response.is_empty()
            && self.cache_corrupt.is_empty()
    }

    /// Sets the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a crash fault (builder style).
    pub fn with_crash(mut self, rank: usize, after_jobs: usize) -> Self {
        self.crash.push(CrashFault { rank, after_jobs });
        self
    }

    /// Adds a stall fault (builder style).
    pub fn with_stall(mut self, rank: usize, after_jobs: usize, duration_ms: u64) -> Self {
        self.stall.push(StallFault {
            rank,
            after_jobs,
            duration_ms,
        });
        self
    }

    /// Adds a corrupt-response fault (builder style).
    pub fn with_corrupt_response(mut self, rank: usize, after_jobs: usize) -> Self {
        self.corrupt_response
            .push(CorruptResponseFault { rank, after_jobs });
        self
    }

    /// Adds a cache-corruption fault (builder style).
    pub fn with_cache_corrupt(mut self, segment: usize, mode: SegmentDamage) -> Self {
        self.cache_corrupt.push(CacheCorruptFault { segment, mode });
        self
    }

    /// The worker-side slice of the plan for one rank: the earliest crash,
    /// stall and corrupt-response faults aimed at it. Cache corruption is
    /// coordinator-side and never reaches workers.
    pub fn worker_fault(&self, rank: usize) -> WorkerFaultSpec {
        let mut spec = WorkerFaultSpec::default();
        for fault in self.crash.iter().filter(|f| f.rank == rank) {
            spec.exit_after_jobs = Some(
                spec.exit_after_jobs
                    .map_or(fault.after_jobs, |v| v.min(fault.after_jobs)),
            );
        }
        for fault in self.stall.iter().filter(|f| f.rank == rank) {
            match spec.stall_after_jobs {
                Some(existing) if existing <= fault.after_jobs => {}
                _ => {
                    spec.stall_after_jobs = Some(fault.after_jobs);
                    spec.stall_duration_ms = fault.duration_ms;
                }
            }
        }
        for fault in self.corrupt_response.iter().filter(|f| f.rank == rank) {
            spec.corrupt_after_jobs = Some(
                spec.corrupt_after_jobs
                    .map_or(fault.after_jobs, |v| v.min(fault.after_jobs)),
            );
        }
        spec
    }

    /// Damages the plan's cache segments under `dir` (deterministically,
    /// driven by the seed), returning the damaged paths. A no-op when the
    /// plan has no `cache_corrupt` entries.
    ///
    /// # Errors
    ///
    /// Returns the I/O error message when a segment cannot be written.
    pub fn apply_cache_corruption(&self, dir: &Path) -> Result<Vec<PathBuf>, String> {
        let mut damaged = Vec::new();
        for (i, fault) in self.cache_corrupt.iter().enumerate() {
            let seed = self.seed.wrapping_add(i as u64);
            let path = damage_segment(dir, fault.segment, fault.mode, seed)
                .map_err(|e| format!("cannot corrupt cache segment {}: {e}", fault.segment))?;
            damaged.push(path);
        }
        Ok(damaged)
    }

    /// Decodes a plan from its JSON document. Unknown fields are rejected —
    /// a typo in a fault plan must fail loudly, not silently inject nothing.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = serde_json::from_str(text).map_err(|e| format!("fault plan: {e}"))?;
        FaultPlan::from_value(&value)
    }

    /// Decodes a plan from an already-parsed JSON value (see
    /// [`FaultPlan::from_json`]).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let Value::Object(entries) = value else {
            return Err("fault plan must be a JSON object".to_string());
        };
        let mut plan = FaultPlan::default();
        for (key, value) in entries {
            match key.as_str() {
                "seed" => {
                    plan.seed = value
                        .as_u64()
                        .ok_or("fault plan: `seed` must be a non-negative integer")?;
                }
                "crash" => {
                    for entry in list_of(value, "crash")? {
                        let (rank, after_jobs) = rank_entry(entry, "crash", &[])?;
                        plan.crash.push(CrashFault { rank, after_jobs });
                    }
                }
                "stall" => {
                    for entry in list_of(value, "stall")? {
                        let (rank, after_jobs) = rank_entry(entry, "stall", &["duration_ms"])?;
                        let duration_ms = entry
                            .get("duration_ms")
                            .and_then(Value::as_u64)
                            .ok_or("fault plan: stall entries need a `duration_ms` integer")?;
                        plan.stall.push(StallFault {
                            rank,
                            after_jobs,
                            duration_ms,
                        });
                    }
                }
                "corrupt_response" => {
                    for entry in list_of(value, "corrupt_response")? {
                        let (rank, after_jobs) = rank_entry(entry, "corrupt_response", &[])?;
                        plan.corrupt_response
                            .push(CorruptResponseFault { rank, after_jobs });
                    }
                }
                "cache_corrupt" => {
                    for entry in list_of(value, "cache_corrupt")? {
                        check_fields(entry, "cache_corrupt", &["segment", "mode"])?;
                        let segment =
                            entry.get("segment").and_then(Value::as_u64).ok_or(
                                "fault plan: cache_corrupt entries need a `segment` integer",
                            )? as usize;
                        let mode = match entry.get("mode").and_then(Value::as_str) {
                            Some("truncate") => SegmentDamage::Truncate,
                            Some("flip") => SegmentDamage::FlipBytes,
                            Some("bad_version") => SegmentDamage::BadVersion,
                            Some(other) => {
                                return Err(format!(
                                    "fault plan: unknown cache_corrupt mode `{other}` \
                                     (expected truncate | flip | bad_version)"
                                ))
                            }
                            None => {
                                return Err(
                                    "fault plan: cache_corrupt entries need a `mode` string"
                                        .to_string(),
                                )
                            }
                        };
                        plan.cache_corrupt.push(CacheCorruptFault { segment, mode });
                    }
                }
                other => return Err(format!("fault plan: unknown field `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Renders the plan back to its JSON document shape (empty lists and a
    /// zero seed are omitted, so `FaultPlan::new().to_value()` is `{}`).
    pub fn to_value(&self) -> Value {
        let mut entries = Vec::new();
        if self.seed != 0 {
            entries.push(("seed".to_string(), Value::UInt(self.seed)));
        }
        if !self.crash.is_empty() {
            let list = self
                .crash
                .iter()
                .map(|f| rank_value(f.rank, f.after_jobs, None))
                .collect();
            entries.push(("crash".to_string(), Value::Array(list)));
        }
        if !self.stall.is_empty() {
            let list = self
                .stall
                .iter()
                .map(|f| rank_value(f.rank, f.after_jobs, Some(f.duration_ms)))
                .collect();
            entries.push(("stall".to_string(), Value::Array(list)));
        }
        if !self.corrupt_response.is_empty() {
            let list = self
                .corrupt_response
                .iter()
                .map(|f| rank_value(f.rank, f.after_jobs, None))
                .collect();
            entries.push(("corrupt_response".to_string(), Value::Array(list)));
        }
        if !self.cache_corrupt.is_empty() {
            let list = self
                .cache_corrupt
                .iter()
                .map(|f| {
                    let mode = match f.mode {
                        SegmentDamage::Truncate => "truncate",
                        SegmentDamage::FlipBytes => "flip",
                        SegmentDamage::BadVersion => "bad_version",
                    };
                    Value::Object(vec![
                        ("segment".to_string(), Value::UInt(f.segment as u64)),
                        ("mode".to_string(), Value::Str(mode.to_string())),
                    ])
                })
                .collect();
            entries.push(("cache_corrupt".to_string(), Value::Array(list)));
        }
        Value::Object(entries)
    }
}

/// The worker-side slice of a [`FaultPlan`] for one rank: what a single
/// `msfu serve` worker process (or thread) injects into its own serve loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerFaultSpec {
    /// Exit without responding upon receiving request `exit_after_jobs + 1`.
    pub exit_after_jobs: Option<usize>,
    /// Sleep before serving request `stall_after_jobs + 1` and every later
    /// request.
    pub stall_after_jobs: Option<usize>,
    /// How long each stalled request sleeps, in milliseconds.
    pub stall_duration_ms: u64,
    /// Garble exactly the response to request `corrupt_after_jobs + 1`.
    pub corrupt_after_jobs: Option<usize>,
}

impl WorkerFaultSpec {
    /// Whether this rank has no faults at all.
    pub fn is_empty(&self) -> bool {
        self.exit_after_jobs.is_none()
            && self.stall_after_jobs.is_none()
            && self.corrupt_after_jobs.is_none()
    }

    /// Renders the spec for the [`ENV_WORKER_FAULT`] transport.
    pub fn to_json(&self) -> String {
        let mut entries = Vec::new();
        if let Some(v) = self.exit_after_jobs {
            entries.push(("exit_after_jobs".to_string(), Value::UInt(v as u64)));
        }
        if let Some(v) = self.stall_after_jobs {
            entries.push(("stall_after_jobs".to_string(), Value::UInt(v as u64)));
            entries.push((
                "stall_duration_ms".to_string(),
                Value::UInt(self.stall_duration_ms),
            ));
        }
        if let Some(v) = self.corrupt_after_jobs {
            entries.push(("corrupt_after_jobs".to_string(), Value::UInt(v as u64)));
        }
        serde_json::to_string(&Value::Object(entries)).expect("plain object renders")
    }

    /// Decodes the [`ENV_WORKER_FAULT`] transport format.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let value = serde_json::from_str(text).map_err(|e| format!("worker fault: {e}"))?;
        let Value::Object(entries) = &value else {
            return Err("worker fault must be a JSON object".to_string());
        };
        let mut spec = WorkerFaultSpec::default();
        for (key, value) in entries {
            let number = value
                .as_u64()
                .ok_or_else(|| format!("worker fault: `{key}` must be an integer"))?;
            match key.as_str() {
                "exit_after_jobs" => spec.exit_after_jobs = Some(number as usize),
                "stall_after_jobs" => spec.stall_after_jobs = Some(number as usize),
                "stall_duration_ms" => spec.stall_duration_ms = number,
                "corrupt_after_jobs" => spec.corrupt_after_jobs = Some(number as usize),
                other => return Err(format!("worker fault: unknown field `{other}`")),
            }
        }
        Ok(spec)
    }
}

/// `{rank, after_jobs[, duration_ms]}` as a JSON object.
fn rank_value(rank: usize, after_jobs: usize, duration_ms: Option<u64>) -> Value {
    let mut entries = vec![
        ("rank".to_string(), Value::UInt(rank as u64)),
        ("after_jobs".to_string(), Value::UInt(after_jobs as u64)),
    ];
    if let Some(ms) = duration_ms {
        entries.push(("duration_ms".to_string(), Value::UInt(ms)));
    }
    Value::Object(entries)
}

/// The entries of a fault list field.
fn list_of<'a>(value: &'a Value, what: &str) -> Result<&'a Vec<Value>, String> {
    value
        .as_array()
        .ok_or_else(|| format!("fault plan: `{what}` must be a list"))
}

/// Rejects fields outside `allowed` in one fault entry.
fn check_fields(entry: &Value, what: &str, allowed: &[&str]) -> Result<(), String> {
    let Value::Object(fields) = entry else {
        return Err(format!("fault plan: {what} entries must be objects"));
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(format!("fault plan: unknown {what} field `{key}`"));
        }
    }
    Ok(())
}

/// Decodes the common `{rank, after_jobs}` pair of one fault entry
/// (`after_jobs` defaults to 0), rejecting unknown fields.
fn rank_entry(entry: &Value, what: &str, extra: &[&str]) -> Result<(usize, usize), String> {
    let mut allowed = vec!["rank", "after_jobs"];
    allowed.extend_from_slice(extra);
    check_fields(entry, what, &allowed)?;
    let rank = entry
        .get("rank")
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("fault plan: {what} entries need a `rank` integer"))?;
    let after_jobs = match entry.get("after_jobs") {
        None => 0,
        Some(v) => v
            .as_u64()
            .ok_or_else(|| format!("fault plan: {what} `after_jobs` must be an integer"))?
            as usize,
    };
    Ok((rank as usize, after_jobs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_round_trips_every_fault_kind() {
        let plan = FaultPlan::new()
            .with_seed(7)
            .with_crash(1, 0)
            .with_stall(0, 1, 60_000)
            .with_corrupt_response(2, 3)
            .with_cache_corrupt(3, SegmentDamage::Truncate)
            .with_cache_corrupt(5, SegmentDamage::FlipBytes)
            .with_cache_corrupt(9, SegmentDamage::BadVersion);
        let text = serde_json::to_string(&plan.to_value()).unwrap();
        let back = FaultPlan::from_json(&text).unwrap();
        assert_eq!(back, plan);
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
        assert_eq!(FaultPlan::new().to_value(), Value::Object(vec![]));
    }

    #[test]
    fn after_jobs_defaults_to_zero_and_unknown_fields_are_rejected() {
        let plan = FaultPlan::from_json(r#"{"corrupt_response": [{"rank": 2}]}"#).unwrap();
        assert_eq!(
            plan.corrupt_response,
            [CorruptResponseFault {
                rank: 2,
                after_jobs: 0
            }]
        );
        for bad in [
            r#"{"crash": [{"rank": 1, "oops": 2}]}"#,
            r#"{"crashes": []}"#,
            r#"{"stall": [{"rank": 0}]}"#,
            r#"{"cache_corrupt": [{"segment": 1, "mode": "melt"}]}"#,
            r#"[1, 2]"#,
        ] {
            assert!(FaultPlan::from_json(bad).is_err(), "must reject {bad}");
        }
    }

    #[test]
    fn worker_fault_slices_the_earliest_fault_per_rank() {
        let plan = FaultPlan::new()
            .with_crash(1, 5)
            .with_crash(1, 2)
            .with_stall(1, 9, 100)
            .with_stall(1, 4, 250)
            .with_corrupt_response(0, 1)
            .with_cache_corrupt(0, SegmentDamage::Truncate);
        let rank1 = plan.worker_fault(1);
        assert_eq!(rank1.exit_after_jobs, Some(2));
        assert_eq!(rank1.stall_after_jobs, Some(4));
        assert_eq!(rank1.stall_duration_ms, 250);
        assert_eq!(rank1.corrupt_after_jobs, None);
        let rank0 = plan.worker_fault(0);
        assert_eq!(rank0.corrupt_after_jobs, Some(1));
        assert!(rank0.exit_after_jobs.is_none());
        assert!(plan.worker_fault(7).is_empty());
    }

    #[test]
    fn worker_fault_spec_round_trips_through_its_env_transport() {
        let spec = WorkerFaultSpec {
            exit_after_jobs: Some(3),
            stall_after_jobs: Some(1),
            stall_duration_ms: 500,
            corrupt_after_jobs: Some(0),
        };
        assert_eq!(WorkerFaultSpec::from_json(&spec.to_json()).unwrap(), spec);
        let empty = WorkerFaultSpec::default();
        assert_eq!(WorkerFaultSpec::from_json(&empty.to_json()).unwrap(), empty);
        assert!(WorkerFaultSpec::from_json("{\"nope\": 1}").is_err());
    }

    #[test]
    fn cache_corruption_applies_deterministically() {
        let dir = std::env::temp_dir().join(format!("msfu-faults-cc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let plan = FaultPlan::new()
            .with_seed(11)
            .with_cache_corrupt(2, SegmentDamage::BadVersion);
        let damaged = plan.apply_cache_corruption(&dir).unwrap();
        assert_eq!(damaged.len(), 1);
        let first = std::fs::read(&damaged[0]).unwrap();
        // Re-applying the same plan rewrites the same bytes.
        let again = plan.apply_cache_corruption(&dir).unwrap();
        assert_eq!(std::fs::read(&again[0]).unwrap(), first);
        assert!(FaultPlan::new()
            .apply_cache_corruption(&dir)
            .unwrap()
            .is_empty());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
