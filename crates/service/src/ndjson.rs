//! NDJSON rendering of progress events.
//!
//! Each event becomes one JSON line tagged `"type": "progress"` and carrying
//! the job id, so a client multiplexing a serve session can route events to
//! the right job. The line formats:
//!
//! ```json
//! {"type":"progress","id":"j1","event":"row_completed","name":"fig7",
//!  "index":0,"total":10,"label":"single","strategy":"FD",
//!  "latency_cycles":4769,"area":24,"volume":114456}
//! {"type":"progress","id":"j1","event":"batch_finished","name":"fig7",
//!  "completed":10,"total":10}
//! {"type":"progress","id":"j2","event":"incumbent_improved","name":"search",
//!  "candidate":0,"value":1444,"strategy":"Line"}
//! {"type":"progress","id":"j2","event":"search_batch_finished","name":"search",
//!  "batch":1,"evaluated":6,"incumbent":1444}
//! ```

use std::io::Write;
use std::sync::Mutex;

use serde_json::Value;

use msfu_core::{ProgressEvent, ProgressSink};

/// Renders one progress event as its wire JSON object.
pub fn progress_to_value(id: &str, event: &ProgressEvent<'_>) -> Value {
    let mut entries = vec![
        ("type".to_string(), Value::Str("progress".to_string())),
        ("id".to_string(), Value::Str(id.to_string())),
    ];
    match event {
        ProgressEvent::RowCompleted {
            name,
            index,
            total,
            row,
        } => {
            entries.extend([
                ("event".to_string(), Value::Str("row_completed".to_string())),
                ("name".to_string(), Value::Str(name.to_string())),
                ("index".to_string(), Value::UInt(*index as u64)),
                ("total".to_string(), Value::UInt(*total as u64)),
                ("label".to_string(), Value::Str(row.label.clone())),
                (
                    "strategy".to_string(),
                    Value::Str(row.evaluation.strategy.clone()),
                ),
                (
                    "latency_cycles".to_string(),
                    Value::UInt(row.evaluation.latency_cycles),
                ),
                ("area".to_string(), Value::UInt(row.evaluation.area as u64)),
                ("volume".to_string(), Value::UInt(row.evaluation.volume)),
            ]);
        }
        ProgressEvent::BatchFinished {
            name,
            completed,
            total,
        } => {
            entries.extend([
                (
                    "event".to_string(),
                    Value::Str("batch_finished".to_string()),
                ),
                ("name".to_string(), Value::Str(name.to_string())),
                ("completed".to_string(), Value::UInt(*completed as u64)),
                ("total".to_string(), Value::UInt(*total as u64)),
            ]);
        }
        ProgressEvent::IncumbentImproved {
            name,
            candidate,
            value,
            strategy,
        } => {
            entries.extend([
                (
                    "event".to_string(),
                    Value::Str("incumbent_improved".to_string()),
                ),
                ("name".to_string(), Value::Str(name.to_string())),
                ("candidate".to_string(), Value::UInt(*candidate as u64)),
                ("value".to_string(), Value::UInt(*value)),
                (
                    "strategy".to_string(),
                    Value::Str(strategy.short_name().to_string()),
                ),
            ]);
        }
        ProgressEvent::SearchBatchFinished {
            name,
            batch,
            evaluated,
            incumbent,
        } => {
            entries.extend([
                (
                    "event".to_string(),
                    Value::Str("search_batch_finished".to_string()),
                ),
                ("name".to_string(), Value::Str(name.to_string())),
                ("batch".to_string(), Value::UInt(*batch as u64)),
                ("evaluated".to_string(), Value::UInt(*evaluated as u64)),
                (
                    "incumbent".to_string(),
                    match incumbent {
                        Some(v) => Value::UInt(*v),
                        None => Value::Null,
                    },
                ),
            ]);
        }
        // ProgressEvent is #[non_exhaustive]; surface future events rather
        // than silently dropping them.
        other => {
            entries.push(("event".to_string(), Value::Str(format!("{other:?}"))));
        }
    }
    Value::Object(entries)
}

/// A [`ProgressSink`] writing each event as one NDJSON line to a shared
/// writer (shared with the response writer of a serve session, so events and
/// responses interleave without tearing).
///
/// Writes are best-effort: a failing writer (e.g. a closed pipe) drops the
/// event rather than aborting the job — the response still reports the
/// outcome.
pub struct NdjsonSink<'a, W: Write> {
    id: &'a str,
    out: &'a Mutex<W>,
}

impl<'a, W: Write> NdjsonSink<'a, W> {
    /// Creates a sink tagging every line with `id`.
    pub fn new(id: &'a str, out: &'a Mutex<W>) -> Self {
        NdjsonSink { id, out }
    }
}

impl<W: Write> ProgressSink for NdjsonSink<'_, W> {
    fn emit(&self, event: &ProgressEvent<'_>) {
        let value = progress_to_value(self.id, event);
        if let Ok(text) = serde_json::to_string(&value) {
            let mut out = self.out.lock().unwrap_or_else(|e| e.into_inner());
            let _ = writeln!(out, "{text}");
            let _ = out.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use msfu_core::{EvaluationConfig, RunControl, Strategy, SweepSpec};
    use msfu_distill::FactoryConfig;

    #[test]
    fn sweep_rows_stream_as_ndjson_lines() {
        let spec = SweepSpec::new("t", EvaluationConfig::default())
            .point("a", FactoryConfig::single_level(2), Strategy::linear())
            .point("b", FactoryConfig::single_level(2), Strategy::random(1));
        let out: Mutex<Vec<u8>> = Mutex::new(Vec::new());
        let sink = NdjsonSink::new("j1", &out);
        let outcome = spec
            .run_with(&RunControl::default().with_progress(&sink))
            .unwrap();
        assert!(!outcome.interrupted);

        let text = String::from_utf8(out.into_inner().unwrap()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Two row events plus one batch event (both points fit one batch).
        assert_eq!(lines.len(), 3, "{text}");
        for line in &lines {
            let value = serde_json::from_str(line).expect("each line is JSON");
            assert_eq!(value.get("type").and_then(Value::as_str), Some("progress"));
            assert_eq!(value.get("id").and_then(Value::as_str), Some("j1"));
        }
        let first = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(
            first.get("event").and_then(Value::as_str),
            Some("row_completed")
        );
        assert_eq!(first.get("strategy").and_then(Value::as_str), Some("Line"));
        let last = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(
            last.get("event").and_then(Value::as_str),
            Some("batch_finished")
        );
        assert_eq!(last.get("completed").and_then(Value::as_u64), Some(2));
    }
}
