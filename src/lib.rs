//! # msfu — Magic-State Functional Units
//!
//! Umbrella crate of the MSFU reproduction (Ding, Holmes, Javadi-Abhari,
//! Franklin, Martonosi, Chong — *"Magic-State Functional Units: Mapping and
//! Scheduling Multi-Level Distillation Circuits for Fault-Tolerant Quantum
//! Architectures"*, MICRO 2018).
//!
//! This crate re-exports the individual subsystem crates under one roof so
//! applications (and the `examples/` directory) only need a single
//! dependency:
//!
//! * [`circuit`] — quantum circuit IR, dependency analysis, scheduling.
//! * [`distill`] — Bravyi-Haah modules, multi-level block-code factories,
//!   error and resource models.
//! * [`graph`] — interaction-graph metrics, communities, partitioning.
//! * [`layout`] — the mapping strategies (linear, random, force-directed,
//!   graph partitioning, hierarchical stitching).
//! * [`sim`] — the cycle-accurate braid network simulator.
//! * [`core`] — the end-to-end evaluation pipeline and reporting helpers.
//! * [`service`] — the versioned request/response façade (and the `msfu`
//!   binary's `run`/`serve` commands): every capability reachable through
//!   one wire format with streaming progress, cooperative cancellation and
//!   stable error codes.
//!
//! # Quickstart
//!
//! The low-level API evaluates one configuration directly:
//!
//! ```
//! use msfu::core::{evaluate, EvaluationConfig, Strategy};
//! use msfu::distill::FactoryConfig;
//!
//! let eval = evaluate(
//!     &FactoryConfig::single_level(2),
//!     &Strategy::linear(),
//!     &EvaluationConfig::default(),
//! )?;
//! println!(
//!     "latency {} cycles, area {} qubits, volume {}",
//!     eval.latency_cycles, eval.area, eval.volume
//! );
//! # Ok::<(), msfu::core::CoreError>(())
//! ```
//!
//! The service façade runs the same job behind the versioned protocol —
//! what a server, queue worker or non-Rust client programs against:
//!
//! ```
//! use msfu::core::{EvaluationConfig, NoProgress, Strategy};
//! use msfu::distill::FactoryConfig;
//! use msfu::service::{JobHandle, Payload, Request, Service};
//!
//! let request = Request::evaluate(
//!     "quickstart",
//!     FactoryConfig::single_level(2),
//!     Strategy::linear(),
//!     EvaluationConfig::default(),
//! );
//! let response = Service::new().run(&request, &JobHandle::new(), &NoProgress);
//! let Ok(Payload::Evaluate(eval)) = response.result else { panic!() };
//! assert!(eval.latency_cycles >= eval.critical_path_cycles);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub use msfu_circuit as circuit;
pub use msfu_core as core;
pub use msfu_distill as distill;
pub use msfu_graph as graph;
pub use msfu_layout as layout;
pub use msfu_service as service;
pub use msfu_sim as sim;
