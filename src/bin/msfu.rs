//! The unified `msfu` command-line front end of the service façade.
//!
//! ```text
//! msfu run <REQUEST.json> [--serial] [--progress] [--lanes K] [--workers N]
//!          [--cache-dir DIR] [--fault-plan FILE] [--shard-timeout-ms MS]
//!          [--max-respawns N]
//!     Execute one job request and print its JSON response on stdout.
//!     --progress additionally streams NDJSON progress events on stderr.
//!     --lanes K overrides a sweep request's lane-batching width (0 or 1
//!     turns batching off); non-sweep jobs ignore it. --workers N shards
//!     the sweep/search across N child `msfu serve` worker processes; the
//!     merged response is byte-identical to a single-process run (only the
//!     perf stamp differs, gaining a perf.cluster section); stream jobs
//!     always run in-process (one shared clock — there is nothing to
//!     shard). --cache-dir DIR points the sweep/search/stream at a
//!     persistent evaluation-cache directory: already simulated
//!     evaluations are served from disk, new ones are appended, and
//!     results stay byte-identical either way.
//!
//! msfu serve [--serial] [--bench-dir DIR] [--workers N] [--cache-dir DIR]
//!            [--fault-plan FILE] [--shard-timeout-ms MS] [--max-respawns N]
//!     JSON-lines session: one request per stdin line, interleaved NDJSON
//!     progress events and responses on stdout, until EOF. Every output
//!     line is flushed as soon as it is written. A line of
//!     {"protocol_version": 1, "cancel": "<id>"} cancels the in-flight or
//!     queued job with that id (with --workers, the cancel fans out to all
//!     workers). --bench-dir additionally writes each completed
//!     sweep/search/stream response as BENCH_<name>.json under DIR, in the
//!     shape the bench-diff regression gate compares. --workers N shards
//!     sweep/search jobs across a pool of N child worker processes that is
//!     connected on the first such job and reused for the session.
//!     --cache-dir DIR is the session-default persistent cache directory:
//!     sweep/search/stream requests without their own "cache_dir" inherit
//!     it, and worker shards share it, so jobs warm each other across the
//!     session and across processes.
//!
//! msfu cache verify <DIR>
//!     Read-only scan of a persistent evaluation-cache directory: prints
//!     every damaged record and quarantined segment. Exit 0 when the
//!     directory is clean, 1 when any damage is present.
//!
//! msfu cache compact <DIR>
//!     Rewrites the cache directory keeping exactly the decodable records
//!     (quarantined segments are salvaged and removed, duplicates and
//!     damaged bytes dropped), leaving a directory that re-opens
//!     warning-free.
//! ```
//!
//! Fault injection: `--fault-plan FILE` (or the `MSFU_FAULT_PLAN`
//! environment variable carrying the same JSON inline) loads a seeded,
//! declarative fault plan — worker crashes, stalls, garbled responses,
//! cache corruption — documented in `msfu::service::faults`. Supervision
//! knobs: `--shard-timeout-ms MS` bounds how long one dispatched shard may
//! stay in flight before its worker is declared hung, and
//! `--max-respawns N` caps replacement workers (default: one per
//! configured worker).
//!
//! Deprecated fault hooks, kept as thin aliases for one release:
//! `MSFU_FAULT_WORKER_RANK` + `MSFU_FAULT_AFTER_JOBS` (a crash entry in
//! plan terms) and `MSFU_SERVE_EXIT_AFTER_JOBS` (a worker-side crash).
//! Declare faults in a plan instead.
//!
//! Request/response schemas are documented in `msfu::service::protocol` and
//! the README's "Service protocol" section. Exit status: 0 when every
//! response is ok, 1 when any response carries an error (for `cache
//! verify`: when damage is present), 2 on usage or I/O problems.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Mutex;
use std::time::Duration;

use msfu::core::{compact_dir, verify_dir};
use msfu::service::cluster::ENV_EXIT_AFTER_JOBS;
use msfu::service::faults::ENV_WORKER_FAULT;
use msfu::service::{
    run_clustered, serve, Cluster, ClusterBackend, FaultPlan, Job, JobHandle, NdjsonSink, Request,
    ServeOptions, Service, Supervision, WorkerFaultSpec,
};

const USAGE: &str = "usage: msfu run <REQUEST.json> [--serial] [--progress] [--lanes K] [--workers N] [--cache-dir DIR] [--fault-plan FILE] [--shard-timeout-ms MS] [--max-respawns N]\n       msfu serve [--serial] [--bench-dir DIR] [--workers N] [--cache-dir DIR] [--fault-plan FILE] [--shard-timeout-ms MS] [--max-respawns N]\n       msfu cache verify <DIR>\n       msfu cache compact <DIR>";

/// Reads the fault plan from the environment: `MSFU_FAULT_PLAN` (the JSON
/// plan inline), plus the deprecated `MSFU_FAULT_WORKER_RANK` +
/// `MSFU_FAULT_AFTER_JOBS` pair, which folds in as a crash entry.
fn fault_plan_from_env() -> Result<Option<FaultPlan>, String> {
    let mut plan = match std::env::var("MSFU_FAULT_PLAN") {
        Ok(text) => Some(FaultPlan::from_json(&text).map_err(|e| format!("MSFU_FAULT_PLAN: {e}"))?),
        Err(_) => None,
    };
    let rank = std::env::var("MSFU_FAULT_WORKER_RANK").ok();
    let after = std::env::var("MSFU_FAULT_AFTER_JOBS").ok();
    match (rank, after) {
        (Some(rank), Some(after)) => {
            let rank = rank
                .parse()
                .map_err(|_| format!("bad MSFU_FAULT_WORKER_RANK `{rank}`"))?;
            let after_jobs = after
                .parse()
                .map_err(|_| format!("bad MSFU_FAULT_AFTER_JOBS `{after}`"))?;
            plan = Some(plan.unwrap_or_default().with_crash(rank, after_jobs));
        }
        (None, None) => {}
        _ => {
            return Err(
                "MSFU_FAULT_WORKER_RANK and MSFU_FAULT_AFTER_JOBS must be set together".to_string(),
            )
        }
    }
    Ok(plan)
}

/// Loads `--fault-plan FILE`, layered over the environment hooks (the
/// explicit file wins field-wise by replacing the whole plan).
fn load_fault_plan(file: Option<&str>) -> Result<Option<FaultPlan>, String> {
    match file {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read fault plan {path}: {e}"))?;
            Ok(Some(
                FaultPlan::from_json(&text).map_err(|e| format!("fault plan {path}: {e}"))?,
            ))
        }
        None => fault_plan_from_env(),
    }
}

/// The child-process backend spawning this very executable as workers.
fn child_backend() -> Result<ClusterBackend, String> {
    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate the msfu executable: {e}"))?;
    Ok(ClusterBackend::ChildProcess { exe })
}

/// Builds the supervision policy from the shared CLI knobs.
fn supervision_from_flags(
    workers: usize,
    shard_timeout_ms: Option<u64>,
    max_respawns: Option<u32>,
) -> Supervision {
    Supervision::default()
        .with_shard_timeout(shard_timeout_ms.map(Duration::from_millis))
        .with_max_respawns(
            max_respawns.unwrap_or_else(|| u32::try_from(workers).unwrap_or(u32::MAX)),
        )
}

fn run_command(args: &[String]) -> Result<bool, String> {
    let mut request_path: Option<&str> = None;
    let mut serial = false;
    let mut progress = false;
    let mut lanes: Option<usize> = None;
    let mut workers = 0usize;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut fault_plan_file: Option<&str> = None;
    let mut shard_timeout_ms: Option<u64> = None;
    let mut max_respawns: Option<u32> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--serial" | "serial" => serial = true,
            "--progress" => progress = true,
            "--lanes" => {
                let v = iter.next().ok_or("--lanes needs a value")?;
                lanes = Some(v.parse().map_err(|_| format!("bad lane count `{v}`"))?);
            }
            "--workers" => {
                let v = iter.next().ok_or("--workers needs a count")?;
                workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
            }
            "--cache-dir" => {
                let dir = iter.next().ok_or("--cache-dir needs a directory")?;
                cache_dir = Some(dir.into());
            }
            "--fault-plan" => {
                fault_plan_file = Some(iter.next().ok_or("--fault-plan needs a file")?);
            }
            "--shard-timeout-ms" => {
                let v = iter.next().ok_or("--shard-timeout-ms needs a value")?;
                shard_timeout_ms = Some(v.parse().map_err(|_| format!("bad shard timeout `{v}`"))?);
            }
            "--max-respawns" => {
                let v = iter.next().ok_or("--max-respawns needs a count")?;
                max_respawns = Some(v.parse().map_err(|_| format!("bad respawn count `{v}`"))?);
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag `{arg}`")),
            _ => {
                if request_path.replace(arg).is_some() {
                    return Err("exactly one request file is expected".to_string());
                }
            }
        }
    }
    let path = request_path.ok_or_else(|| USAGE.to_string())?;
    let plan = load_fault_plan(fault_plan_file)?;
    if let (Some(plan), Some(dir)) = (&plan, &cache_dir) {
        for damaged in plan.apply_cache_corruption(dir)? {
            eprintln!(
                "[msfu faults] corrupted cache segment {}",
                damaged.display()
            );
        }
    }
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let response = match Request::from_json(&text) {
        Ok(mut request) => {
            request.serial = request.serial || serial;
            if let (Some(lanes), Job::Sweep { spec }) = (lanes, &mut request.job) {
                spec.lanes = lanes;
            }
            if let Some(dir) = cache_dir {
                // An explicit flag overrides the request's own cache_dir.
                match &mut request.job {
                    Job::Sweep { spec } => spec.cache_dir = Some(dir),
                    Job::Search { spec } => spec.cache_dir = Some(dir),
                    Job::Stream { spec } => spec.cache_dir = Some(dir),
                    _ => {}
                }
            }
            let handle = JobHandle::new();
            let clustered =
                workers > 0 && matches!(request.job, Job::Sweep { .. } | Job::Search { .. });
            if clustered {
                // One-shot pool of child `msfu serve` workers; dropped (and
                // reaped) as soon as the merged response is in.
                let mut pool = Cluster::connect(&child_backend()?, workers, plan.as_ref())
                    .map_err(|e| format!("cannot connect the worker pool: {e}"))?
                    .with_supervision(supervision_from_flags(
                        workers,
                        shard_timeout_ms,
                        max_respawns,
                    ));
                let stderr = Mutex::new(std::io::stderr());
                run_clustered(&mut pool, &request, &handle, progress.then_some(&stderr))
            } else if progress {
                let stderr = Mutex::new(std::io::stderr());
                let sink = NdjsonSink::new(&request.id, &stderr);
                Service::new().run(&request, &handle, &sink)
            } else {
                Service::new().run(&request, &handle, &msfu::core::NoProgress)
            }
        }
        Err(error) => msfu::service::Response::for_request_error(error),
    };
    let ok = response.result.is_ok();
    let text = serde_json::to_string_pretty(&response.to_value()).map_err(|e| e.to_string())?;
    // Tolerate a closed pipe (e.g. `msfu run ... | head`): the job already
    // ran; a write error must not turn into a panic.
    let _ = writeln!(std::io::stdout(), "{text}");
    Ok(ok)
}

fn serve_command(args: &[String]) -> Result<bool, String> {
    let mut options = ServeOptions::new();
    let mut fault_plan_file: Option<&str> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--serial" | "serial" => options = options.with_serial(true),
            "--bench-dir" => {
                let dir = iter.next().ok_or("--bench-dir needs a directory")?;
                options = options.with_bench_dir(dir);
            }
            "--workers" => {
                let v = iter.next().ok_or("--workers needs a count")?;
                let workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
                options = options.with_workers(workers);
            }
            "--cache-dir" => {
                let dir = iter.next().ok_or("--cache-dir needs a directory")?;
                options = options.with_cache_dir(dir);
            }
            "--fault-plan" => {
                fault_plan_file = Some(iter.next().ok_or("--fault-plan needs a file")?);
            }
            "--shard-timeout-ms" => {
                let v = iter.next().ok_or("--shard-timeout-ms needs a value")?;
                let ms = v.parse().map_err(|_| format!("bad shard timeout `{v}`"))?;
                options = options.with_shard_timeout_ms(ms);
            }
            "--max-respawns" => {
                let v = iter.next().ok_or("--max-respawns needs a count")?;
                let n = v.parse().map_err(|_| format!("bad respawn count `{v}`"))?;
                options = options.with_max_respawns(n);
            }
            _ => return Err(format!("unknown argument `{arg}`")),
        }
    }
    if let Some(plan) = load_fault_plan(fault_plan_file)? {
        options = options.with_fault_plan(plan);
    }
    if options.workers > 0 {
        options = options.with_backend(child_backend()?);
    }
    if let Ok(text) = std::env::var(ENV_WORKER_FAULT) {
        // This process is a worker of a supervised pool: the coordinator
        // handed it its slice of the fault plan.
        options = options.with_worker_fault(
            WorkerFaultSpec::from_json(&text).map_err(|e| format!("{ENV_WORKER_FAULT}: {e}"))?,
        );
    }
    if let Ok(v) = std::env::var(ENV_EXIT_AFTER_JOBS) {
        // Deprecated worker-side crash hook (one release): a crash entry of
        // the plan slice in disguise.
        let mut fault = options.worker_fault;
        fault.exit_after_jobs = Some(
            v.parse()
                .map_err(|_| format!("bad {ENV_EXIT_AFTER_JOBS} `{v}`"))?,
        );
        options = options.with_worker_fault(fault);
    }
    // StdinLock is not Send (the reader runs on a dedicated thread), so wrap
    // the unlocked handle instead.
    let stdin = std::io::BufReader::new(std::io::stdin());
    let stdout = std::io::stdout().lock();
    let summary = serve(stdin, stdout, &options).map_err(|e| format!("serve session: {e}"))?;
    writeln!(
        std::io::stderr(),
        "[msfu serve] {} response(s), {} error(s), {} cancelled",
        summary.responses,
        summary.errors,
        summary.cancelled
    )
    .ok();
    Ok(summary.errors == 0)
}

fn cache_command(args: &[String]) -> Result<bool, String> {
    let [action, dir] = args else {
        return Err(USAGE.to_string());
    };
    let dir = std::path::Path::new(dir);
    match action.as_str() {
        "verify" => {
            let report = verify_dir(dir)?;
            for warning in &report.warnings {
                eprintln!("[msfu cache] {warning}");
            }
            for path in &report.quarantined {
                eprintln!(
                    "[msfu cache] quarantined segment present: {}",
                    path.display()
                );
            }
            println!(
                "{}: {} segment(s), {} record(s), {} byte(s), {} warning(s), {} quarantined — {}",
                dir.display(),
                report.segments,
                report.records,
                report.bytes,
                report.warnings.len(),
                report.quarantined.len(),
                if report.is_clean() {
                    "clean"
                } else {
                    "DAMAGED (run `msfu cache compact`)"
                },
            );
            Ok(report.is_clean())
        }
        "compact" => {
            let report = compact_dir(dir)?;
            println!(
                "{}: kept {} record(s) ({} duplicate(s) dropped, {} salvaged from quarantine, \
                 {} damaged dropped), removed {} quarantined segment(s), {} -> {} bytes",
                dir.display(),
                report.records_kept,
                report.duplicates_dropped,
                report.salvaged,
                report.damage_dropped,
                report.quarantined_removed,
                report.bytes_before,
                report.bytes_after,
            );
            Ok(true)
        }
        other => Err(format!("unknown cache action `{other}` (verify | compact)")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run_command(&args[1..]),
        Some("serve") => serve_command(&args[1..]),
        Some("cache") => cache_command(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("msfu: {message}");
            ExitCode::from(2)
        }
    }
}
