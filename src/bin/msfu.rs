//! The unified `msfu` command-line front end of the service façade.
//!
//! ```text
//! msfu run <REQUEST.json> [--serial] [--progress] [--lanes K] [--workers N]
//!          [--cache-dir DIR]
//!     Execute one job request and print its JSON response on stdout.
//!     --progress additionally streams NDJSON progress events on stderr.
//!     --lanes K overrides a sweep request's lane-batching width (0 or 1
//!     turns batching off); non-sweep jobs ignore it. --workers N shards
//!     the sweep/search across N child `msfu serve` worker processes; the
//!     merged response is byte-identical to a single-process run (only the
//!     perf stamp differs, gaining a perf.cluster section); stream jobs
//!     always run in-process (one shared clock — there is nothing to
//!     shard). --cache-dir DIR points the sweep/search/stream at a
//!     persistent evaluation-cache directory: already simulated
//!     evaluations are served from disk, new ones are appended, and
//!     results stay byte-identical either way.
//!
//! msfu serve [--serial] [--bench-dir DIR] [--workers N] [--cache-dir DIR]
//!     JSON-lines session: one request per stdin line, interleaved NDJSON
//!     progress events and responses on stdout, until EOF. Every output
//!     line is flushed as soon as it is written. A line of
//!     {"protocol_version": 1, "cancel": "<id>"} cancels the in-flight or
//!     queued job with that id (with --workers, the cancel fans out to all
//!     workers). --bench-dir additionally writes each completed
//!     sweep/search/stream response as BENCH_<name>.json under DIR, in the
//!     shape the bench-diff regression gate compares. --workers N shards
//!     sweep/search jobs across a pool of N child worker processes that is
//!     connected on the first such job and reused for the session.
//!     --cache-dir DIR is the session-default persistent cache directory:
//!     sweep/search/stream requests without their own "cache_dir" inherit
//!     it, and worker shards share it, so jobs warm each other across the
//!     session and across processes.
//! ```
//!
//! Fault-injection environment hooks (CI crash-recovery tests only):
//! `MSFU_FAULT_WORKER_RANK` + `MSFU_FAULT_AFTER_JOBS` make the coordinator
//! kill that worker rank after it served that many shards, and
//! `MSFU_SERVE_EXIT_AFTER_JOBS` makes a `serve` process exit without
//! responding upon receiving the following request.
//!
//! Request/response schemas are documented in `msfu::service::protocol` and
//! the README's "Service protocol" section. Exit status: 0 when every
//! response is ok, 1 when any response carries an error, 2 on usage or I/O
//! problems.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Mutex;

use msfu::service::cluster::{WorkerFault, ENV_EXIT_AFTER_JOBS};
use msfu::service::{
    run_clustered, serve, Cluster, ClusterBackend, Job, JobHandle, NdjsonSink, Request,
    ServeOptions, Service,
};

const USAGE: &str = "usage: msfu run <REQUEST.json> [--serial] [--progress] [--lanes K] [--workers N] [--cache-dir DIR]\n       msfu serve [--serial] [--bench-dir DIR] [--workers N] [--cache-dir DIR]";

/// Reads the coordinator-side fault-injection hook (CI crash tests).
fn fault_from_env() -> Result<Option<WorkerFault>, String> {
    let rank = std::env::var("MSFU_FAULT_WORKER_RANK").ok();
    let after = std::env::var("MSFU_FAULT_AFTER_JOBS").ok();
    match (rank, after) {
        (Some(rank), Some(after)) => {
            let rank = rank
                .parse()
                .map_err(|_| format!("bad MSFU_FAULT_WORKER_RANK `{rank}`"))?;
            let after_jobs = after
                .parse()
                .map_err(|_| format!("bad MSFU_FAULT_AFTER_JOBS `{after}`"))?;
            Ok(Some(WorkerFault { rank, after_jobs }))
        }
        (None, None) => Ok(None),
        _ => {
            Err("MSFU_FAULT_WORKER_RANK and MSFU_FAULT_AFTER_JOBS must be set together".to_string())
        }
    }
}

/// The child-process backend spawning this very executable as workers.
fn child_backend() -> Result<ClusterBackend, String> {
    let exe =
        std::env::current_exe().map_err(|e| format!("cannot locate the msfu executable: {e}"))?;
    Ok(ClusterBackend::ChildProcess { exe })
}

fn run_command(args: &[String]) -> Result<bool, String> {
    let mut request_path: Option<&str> = None;
    let mut serial = false;
    let mut progress = false;
    let mut lanes: Option<usize> = None;
    let mut workers = 0usize;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--serial" | "serial" => serial = true,
            "--progress" => progress = true,
            "--lanes" => {
                let v = iter.next().ok_or("--lanes needs a value")?;
                lanes = Some(v.parse().map_err(|_| format!("bad lane count `{v}`"))?);
            }
            "--workers" => {
                let v = iter.next().ok_or("--workers needs a count")?;
                workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
            }
            "--cache-dir" => {
                let dir = iter.next().ok_or("--cache-dir needs a directory")?;
                cache_dir = Some(dir.into());
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag `{arg}`")),
            _ => {
                if request_path.replace(arg).is_some() {
                    return Err("exactly one request file is expected".to_string());
                }
            }
        }
    }
    let path = request_path.ok_or_else(|| USAGE.to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let response = match Request::from_json(&text) {
        Ok(mut request) => {
            request.serial = request.serial || serial;
            if let (Some(lanes), Job::Sweep { spec }) = (lanes, &mut request.job) {
                spec.lanes = lanes;
            }
            if let Some(dir) = cache_dir {
                // An explicit flag overrides the request's own cache_dir.
                match &mut request.job {
                    Job::Sweep { spec } => spec.cache_dir = Some(dir),
                    Job::Search { spec } => spec.cache_dir = Some(dir),
                    Job::Stream { spec } => spec.cache_dir = Some(dir),
                    _ => {}
                }
            }
            let handle = JobHandle::new();
            let clustered =
                workers > 0 && matches!(request.job, Job::Sweep { .. } | Job::Search { .. });
            if clustered {
                // One-shot pool of child `msfu serve` workers; dropped (and
                // reaped) as soon as the merged response is in.
                let mut pool = Cluster::connect(&child_backend()?, workers, fault_from_env()?)
                    .map_err(|e| format!("cannot connect the worker pool: {e}"))?;
                let stderr = Mutex::new(std::io::stderr());
                run_clustered(&mut pool, &request, &handle, progress.then_some(&stderr))
            } else if progress {
                let stderr = Mutex::new(std::io::stderr());
                let sink = NdjsonSink::new(&request.id, &stderr);
                Service::new().run(&request, &handle, &sink)
            } else {
                Service::new().run(&request, &handle, &msfu::core::NoProgress)
            }
        }
        Err(error) => msfu::service::Response::for_request_error(error),
    };
    let ok = response.result.is_ok();
    let text = serde_json::to_string_pretty(&response.to_value()).map_err(|e| e.to_string())?;
    // Tolerate a closed pipe (e.g. `msfu run ... | head`): the job already
    // ran; a write error must not turn into a panic.
    let _ = writeln!(std::io::stdout(), "{text}");
    Ok(ok)
}

fn serve_command(args: &[String]) -> Result<bool, String> {
    let mut options = ServeOptions::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--serial" | "serial" => options = options.with_serial(true),
            "--bench-dir" => {
                let dir = iter.next().ok_or("--bench-dir needs a directory")?;
                options = options.with_bench_dir(dir);
            }
            "--workers" => {
                let v = iter.next().ok_or("--workers needs a count")?;
                let workers = v.parse().map_err(|_| format!("bad worker count `{v}`"))?;
                options = options.with_workers(workers);
            }
            "--cache-dir" => {
                let dir = iter.next().ok_or("--cache-dir needs a directory")?;
                options = options.with_cache_dir(dir);
            }
            _ => return Err(format!("unknown argument `{arg}`")),
        }
    }
    if options.workers > 0 {
        options = options.with_backend(child_backend()?);
        if let Some(fault) = fault_from_env()? {
            options = options.with_fault(fault.rank, fault.after_jobs);
        }
    }
    if let Ok(v) = std::env::var(ENV_EXIT_AFTER_JOBS) {
        // Worker-side crash hook, set by a coordinator's fault injection.
        let after = v
            .parse()
            .map_err(|_| format!("bad {ENV_EXIT_AFTER_JOBS} `{v}`"))?;
        options.exit_after_jobs = Some(after);
    }
    // StdinLock is not Send (the reader runs on a dedicated thread), so wrap
    // the unlocked handle instead.
    let stdin = std::io::BufReader::new(std::io::stdin());
    let stdout = std::io::stdout().lock();
    let summary = serve(stdin, stdout, &options).map_err(|e| format!("serve session: {e}"))?;
    writeln!(
        std::io::stderr(),
        "[msfu serve] {} response(s), {} error(s), {} cancelled",
        summary.responses,
        summary.errors,
        summary.cancelled
    )
    .ok();
    Ok(summary.errors == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run_command(&args[1..]),
        Some("serve") => serve_command(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("msfu: {message}");
            ExitCode::from(2)
        }
    }
}
