//! The unified `msfu` command-line front end of the service façade.
//!
//! ```text
//! msfu run <REQUEST.json> [--serial] [--progress] [--lanes K]
//!     Execute one job request and print its JSON response on stdout.
//!     --progress additionally streams NDJSON progress events on stderr.
//!     --lanes K overrides a sweep request's lane-batching width (0 or 1
//!     turns batching off); non-sweep jobs ignore it.
//!
//! msfu serve [--serial] [--bench-dir DIR]
//!     JSON-lines session: one request per stdin line, interleaved NDJSON
//!     progress events and responses on stdout, until EOF. A line of
//!     {"protocol_version": 1, "cancel": "<id>"} cancels the in-flight or
//!     queued job with that id. --bench-dir additionally writes each
//!     completed sweep/search response as BENCH_<name>.json under DIR, in
//!     the shape the bench-diff regression gate compares.
//! ```
//!
//! Request/response schemas are documented in `msfu::service::protocol` and
//! the README's "Service protocol" section. Exit status: 0 when every
//! response is ok, 1 when any response carries an error, 2 on usage or I/O
//! problems.

use std::io::Write;
use std::process::ExitCode;
use std::sync::Mutex;

use msfu::service::{serve, Job, JobHandle, NdjsonSink, Request, ServeOptions, Service};

const USAGE: &str = "usage: msfu run <REQUEST.json> [--serial] [--progress] [--lanes K]\n       msfu serve [--serial] [--bench-dir DIR]";

fn run_command(args: &[String]) -> Result<bool, String> {
    let mut request_path: Option<&str> = None;
    let mut serial = false;
    let mut progress = false;
    let mut lanes: Option<usize> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--serial" | "serial" => serial = true,
            "--progress" => progress = true,
            "--lanes" => {
                let v = iter.next().ok_or("--lanes needs a value")?;
                lanes = Some(v.parse().map_err(|_| format!("bad lane count `{v}`"))?);
            }
            _ if arg.starts_with("--") => return Err(format!("unknown flag `{arg}`")),
            _ => {
                if request_path.replace(arg).is_some() {
                    return Err("exactly one request file is expected".to_string());
                }
            }
        }
    }
    let path = request_path.ok_or_else(|| USAGE.to_string())?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let response = match Request::from_json(&text) {
        Ok(mut request) => {
            request.serial = request.serial || serial;
            if let (Some(lanes), Job::Sweep { spec }) = (lanes, &mut request.job) {
                spec.lanes = lanes;
            }
            let handle = JobHandle::new();
            if progress {
                let stderr = Mutex::new(std::io::stderr());
                let sink = NdjsonSink::new(&request.id, &stderr);
                Service::new().run(&request, &handle, &sink)
            } else {
                Service::new().run(&request, &handle, &msfu::core::NoProgress)
            }
        }
        Err(error) => msfu::service::Response::for_request_error(error),
    };
    let ok = response.result.is_ok();
    let text = serde_json::to_string_pretty(&response.to_value()).map_err(|e| e.to_string())?;
    // Tolerate a closed pipe (e.g. `msfu run ... | head`): the job already
    // ran; a write error must not turn into a panic.
    let _ = writeln!(std::io::stdout(), "{text}");
    Ok(ok)
}

fn serve_command(args: &[String]) -> Result<bool, String> {
    let mut options = ServeOptions::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--serial" | "serial" => options = options.with_serial(true),
            "--bench-dir" => {
                let dir = iter.next().ok_or("--bench-dir needs a directory")?;
                options = options.with_bench_dir(dir);
            }
            _ => return Err(format!("unknown argument `{arg}`")),
        }
    }
    // StdinLock is not Send (the reader runs on a dedicated thread), so wrap
    // the unlocked handle instead.
    let stdin = std::io::BufReader::new(std::io::stdin());
    let stdout = std::io::stdout().lock();
    let summary = serve(stdin, stdout, &options).map_err(|e| format!("serve session: {e}"))?;
    writeln!(
        std::io::stderr(),
        "[msfu serve] {} response(s), {} error(s), {} cancelled",
        summary.responses,
        summary.errors,
        summary.cancelled
    )
    .ok();
    Ok(summary.errors == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("run") => run_command(&args[1..]),
        Some("serve") => serve_command(&args[1..]),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::from(1),
        Err(message) => {
            eprintln!("msfu: {message}");
            ExitCode::from(2)
        }
    }
}
