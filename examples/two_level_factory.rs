//! Two-level block-code factory: compare every mapping strategy of the paper
//! on a capacity-16 two-level factory and show where hierarchical stitching
//! wins. Also prints the per-round latency breakdown (round execution vs
//! inter-round permutation) for the stitched layout.
//!
//! Run with: `cargo run --example two_level_factory --release`

use msfu::core::{evaluate_factory, pipeline, EvaluationConfig, Strategy};
use msfu::distill::{Factory, FactoryConfig, ReusePolicy};
use msfu::layout::{
    FactoryMapper, ForceDirectedConfig, HierarchicalStitchingMapper, StitchingConfig,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = FactoryConfig::two_level(4).with_reuse(ReusePolicy::Reuse);
    println!(
        "two-level factory: capacity {} ({} round-0 modules feeding {} round-1 modules, {} logical qubits)",
        config.capacity(),
        config.modules_in_round(0),
        config.modules_in_round(1),
        Factory::build(&config)?.num_qubits()
    );

    let eval_config = EvaluationConfig::default();
    let strategies = vec![
        Strategy::random(7),
        Strategy::linear(),
        Strategy::force_directed(ForceDirectedConfig {
            seed: 7,
            iterations: 12,
            repulsion_sample: 4_000,
            ..ForceDirectedConfig::default()
        }),
        Strategy::graph_partition(7),
        Strategy::hierarchical_stitching(StitchingConfig {
            seed: 7,
            ..StitchingConfig::default()
        }),
    ];

    // One shared immutable factory serves every strategy (mapping never
    // mutates it; port rewiring is applied per evaluation to a private copy).
    let factory = Factory::build(&config)?;
    println!(
        "\n{:<8}{:>12}{:>10}{:>14}{:>16}",
        "mapper", "latency", "area", "volume", "vs critical"
    );
    for strategy in strategies {
        let eval = evaluate_factory(&factory, &strategy, &eval_config)?;
        println!(
            "{:<8}{:>12}{:>10}{:>14}{:>15.2}x",
            eval.strategy,
            eval.latency_cycles,
            eval.area,
            eval.volume,
            eval.volume_ratio_to_critical()
        );
    }

    // Per-round breakdown under the stitched layout.
    let layout = HierarchicalStitchingMapper::new(7).map_factory(&factory)?;
    let stitched = factory.apply_port_assignment(&layout.ports)?;
    let breakdown = pipeline::per_round_breakdown(&stitched, &layout, &eval_config.sim)?;
    println!("\nper-round breakdown (hierarchical stitching):");
    for b in &breakdown {
        println!(
            "  round {}: {} cycles of distillation, {} cycles of permutation to the next round",
            b.round, b.round_cycles, b.permutation_cycles
        );
    }
    Ok(())
}
