//! Mapping-metric study: reproduce the intuition behind Fig. 6 of the paper
//! by comparing the three congestion heuristics (edge crossings, edge length,
//! edge spacing) across the mapping strategies on the same circuit, and
//! showing how they track the simulated latency.
//!
//! Run with: `cargo run --example mapping_comparison --release`

use msfu::distill::{Factory, FactoryConfig};
use msfu::graph::{metrics::MappingMetrics, InteractionGraph};
use msfu::layout::{
    FactoryMapper, ForceDirectedConfig, ForceDirectedMapper, GraphPartitionMapper, LinearMapper,
    RandomMapper,
};
use msfu::sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let factory = Factory::build(&FactoryConfig::single_level(8))?;
    let graph = InteractionGraph::from_circuit(factory.circuit());
    let simulator = Simulator::new(SimConfig::default());

    let mappers: Vec<(&str, Box<dyn FactoryMapper>)> = vec![
        ("random", Box::new(RandomMapper::new(3))),
        ("linear", Box::new(LinearMapper::new())),
        (
            "force-directed",
            Box::new(ForceDirectedMapper::with_config(ForceDirectedConfig {
                seed: 3,
                iterations: 20,
                repulsion_sample: 5_000,
                ..ForceDirectedConfig::default()
            })),
        ),
        ("graph-partition", Box::new(GraphPartitionMapper::new(3))),
    ];

    println!(
        "{:<18}{:>12}{:>16}{:>16}{:>12}{:>12}",
        "mapper", "crossings", "avg length", "avg spacing", "latency", "volume"
    );
    for (name, mapper) in mappers {
        let layout = mapper.map_factory(&factory)?;
        let m = MappingMetrics::compute(&graph, &layout.mapping.to_points());
        let result = simulator.run(factory.circuit(), &layout)?;
        println!(
            "{:<18}{:>12}{:>16.2}{:>16.2}{:>12}{:>12}",
            name,
            m.edge_crossings,
            m.avg_edge_length,
            m.avg_edge_spacing,
            result.cycles,
            result.volume()
        );
    }
    println!(
        "\nfewer crossings and shorter edges generally mean fewer braid conflicts and lower latency (Fig. 6)."
    );
    Ok(())
}
