//! Quickstart: build a single-level Bravyi-Haah factory, map it with the
//! linear baseline and with graph partitioning, simulate both, and compare
//! the realised space-time volumes against the critical-path lower bound.
//!
//! Run with: `cargo run --example quickstart --release`

use msfu::core::{evaluate, EvaluationConfig, Strategy};
use msfu::distill::{resource, FactoryConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A single-level factory of capacity 8: consumes 32 raw states, uses 13
    // ancillas and distils 8 higher-fidelity magic states (Fig. 5 of the
    // paper).
    let config = FactoryConfig::single_level(8);
    println!(
        "factory: k = {}, levels = {}, capacity = {}, qubits per module = {}",
        config.k,
        config.levels,
        config.capacity(),
        config.qubits_per_module()
    );

    let eval_config = EvaluationConfig::default();
    for strategy in [Strategy::linear(), Strategy::graph_partition(42)] {
        let eval = evaluate(&config, &strategy, &eval_config)?;
        println!(
            "{:<6} latency = {:>6} cycles  area = {:>4} qubits  volume = {:>8}  (lower bound {:>8})",
            eval.strategy, eval.latency_cycles, eval.area, eval.volume, eval.critical_volume
        );
    }

    // Physical resource estimate under the balanced-investment rule.
    let estimate = resource::estimate(&config, 1e-3, 1e-4);
    println!(
        "output error rate: {:.2e}, code distance d = {}, physical qubits ≈ {}",
        estimate.output_error, estimate.rounds[0].code_distance, estimate.peak_physical_qubits
    );
    Ok(())
}
