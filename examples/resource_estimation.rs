//! Physical resource estimation for a target algorithm: how many block-code
//! levels, what code distances, and how many physical qubits a magic-state
//! factory needs to support a large computation (Section II-D/II-G of the
//! paper uses the Fe2S2 ground-state estimation workload, with on the order
//! of 10^12 T gates).
//!
//! Run with: `cargo run --example resource_estimation --release`

use msfu::distill::{error_model, resource, FactoryConfig};

fn main() {
    // Workload: ~10^12 T gates (Section II-D). Every T gate consumes one
    // distilled magic state, so the total failure budget fixes the target
    // output error rate per state.
    let t_count: f64 = 1e12;
    let total_failure_budget = 0.1; // 10% chance of any logical fault overall
    let target_error = total_failure_budget / t_count;
    let injection_error = 1e-3;
    let physical_error = 1e-4;

    println!("workload: {t_count:.1e} T gates, target error per magic state {target_error:.2e}");
    println!(
        "injected-state error {injection_error:.0e}, physical error rate {physical_error:.0e}\n"
    );

    println!(
        "{:<6}{:>10}{:>16}{:>14}{:>18}{:>20}",
        "k", "levels", "output error", "distances", "logical qubits", "physical qubits"
    );
    for k in [2usize, 4, 6, 8, 10] {
        let levels = match error_model::required_levels(k, injection_error, target_error) {
            Some(l) => l.max(1),
            None => {
                println!("{k:<6}{:>10}", "diverges");
                continue;
            }
        };
        let config = FactoryConfig::new(k, levels);
        let est = resource::estimate(&config, injection_error, physical_error);
        let distances: Vec<String> = est
            .rounds
            .iter()
            .map(|r| r.code_distance.to_string())
            .collect();
        let logical: usize = est
            .rounds
            .iter()
            .map(|r| r.logical_qubits)
            .max()
            .unwrap_or(0);
        println!(
            "{k:<6}{levels:>10}{:>16.2e}{:>14}{:>18}{:>20}",
            est.output_error,
            distances.join("/"),
            logical,
            est.peak_physical_qubits
        );
    }

    println!(
        "\nsmaller k needs more levels but smaller modules; larger k reaches the target error in fewer rounds at a higher per-round cost."
    );
}
