//! Inter-round permutation routing (Section VII-B3 / Fig. 9c-9d of the
//! paper): compare the latency of the permutation step between block-code
//! rounds under the four intermediate-hop strategies.
//!
//! Run with: `cargo run --example permutation_routing --release`

use msfu::core::pipeline;
use msfu::distill::{Factory, FactoryConfig};
use msfu::layout::{FactoryMapper, HierarchicalStitchingMapper, HopStrategy, StitchingConfig};
use msfu::sim::SimConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = FactoryConfig::two_level(4);
    println!(
        "two-level factory, capacity {}: {} permutation edges between rounds",
        config.capacity(),
        Factory::build(&config)?.permutation_edges().len()
    );

    println!(
        "\n{:<26}{:>20}{:>20}",
        "hop strategy", "permutation cycles", "total cycles"
    );
    let factory = Factory::build(&config)?;
    for hop in [
        HopStrategy::None,
        HopStrategy::RandomHop,
        HopStrategy::AnnealedRandomHop,
        HopStrategy::AnnealedMidpointHop,
    ] {
        let mapper = HierarchicalStitchingMapper::with_config(StitchingConfig {
            seed: 11,
            hop_strategy: hop,
            ..StitchingConfig::default()
        });
        let layout = mapper.map_factory(&factory)?;
        let rewired = factory.apply_port_assignment(&layout.ports)?;
        // Fixed-path routing with stall-on-intersection, as in the paper's
        // simulator; intermediate hops exist to spread these fixed paths out.
        let sim = SimConfig::dimension_ordered();
        let breakdown = pipeline::per_round_breakdown(&rewired, &layout, &sim)?;
        let permutation = pipeline::total_permutation_cycles(&breakdown);
        let total: u64 = breakdown
            .iter()
            .map(|b| b.round_cycles + b.permutation_cycles)
            .sum();
        println!("{:<26}{:>20}{:>20}", hop.name(), permutation, total);
    }
    println!("\nthe paper reports ~1.3x permutation-latency reduction from annealed intermediate destinations (Fig. 9d).");
    Ok(())
}
