//! The service façade from library code: versioned requests, streaming
//! progress, cooperative cancellation.
//!
//! Run with: `cargo run --example service_session`
//!
//! The same protocol is reachable from the command line:
//!
//! ```text
//! msfu run request.json            # one job -> one JSON response
//! msfu serve < session.ndjson      # many jobs, progress + responses
//! ```

use std::sync::Mutex;

use msfu::core::{EvaluationConfig, ProgressEvent, ProgressSink, Strategy, SweepSpec};
use msfu::distill::FactoryConfig;
use msfu::service::{JobHandle, NdjsonSink, Payload, Request, Service};

/// A sink that prints a one-line summary per event — what a web dashboard
/// or queue worker would forward to its own transport.
struct ConsoleSink;

impl ProgressSink for ConsoleSink {
    fn emit(&self, event: &ProgressEvent<'_>) {
        match event {
            ProgressEvent::RowCompleted {
                index, total, row, ..
            } => println!(
                "  [{} / {total}] {} {}: volume {}",
                index + 1,
                row.label,
                row.evaluation.strategy,
                row.evaluation.volume
            ),
            ProgressEvent::BatchFinished {
                completed, total, ..
            } => println!("  batch boundary at {completed}/{total}"),
            _ => {}
        }
    }
}

fn main() {
    let service = Service::new();

    // A sweep request assembled in Rust. The identical job is expressible as
    // pure JSON (README "Service protocol") for non-Rust clients.
    let spec = SweepSpec::new("demo", EvaluationConfig::default())
        .point("a", FactoryConfig::single_level(2), Strategy::linear())
        .point("a", FactoryConfig::single_level(2), Strategy::random(7))
        .point("b", FactoryConfig::single_level(4), Strategy::linear());
    let request = Request::sweep("session-demo", spec.clone());

    println!("# running a sweep with streamed progress");
    let response = service.run(&request, &JobHandle::new(), &ConsoleSink);
    let Ok(Payload::Sweep(results)) = &response.result else {
        panic!("sweep failed")
    };
    println!(
        "-> {} rows in {:.3}s (cancelled: {})\n",
        results.rows.len(),
        response.perf.wall_seconds,
        response.cancelled
    );

    // Cooperative cancellation: a pre-cancelled handle stops the job at its
    // first batch boundary; the response still carries the completed prefix.
    println!("# the same job, cancelled before it starts");
    let handle = JobHandle::new();
    handle.cancel();
    let cancelled = service.run(&request, &handle, &ConsoleSink);
    println!(
        "-> cancelled: {}, partial rows: {}\n",
        cancelled.cancelled,
        match &cancelled.result {
            Ok(Payload::Sweep(results)) => results.rows.len(),
            _ => 0,
        }
    );

    // The wire form: the NDJSON sink renders events exactly as `msfu serve`
    // streams them, and the response renders to one JSON line.
    println!("# the wire form (NDJSON progress + response)");
    let out = Mutex::new(Vec::<u8>::new());
    let sink = NdjsonSink::new("session-demo", &out);
    let response = service.run(&request, &JobHandle::new(), &sink);
    print!("{}", String::from_utf8(out.into_inner().unwrap()).unwrap());
    println!("{}", response.to_json());
}
